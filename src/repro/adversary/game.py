"""The two-player adversarial game loop (Section 1, "The Adversarial Setting").

``AdversarialGame.run`` referees a match between a streaming algorithm and
an adversary: each round the adversary picks an update, the algorithm
ingests it and publishes a response, the referee scores the response
against the exact ground truth (maintained in a
:class:`~repro.streams.frequency.FrequencyVector`), and the adversary
observes the response.  The result records the full transcript, the first
failure step, and summary error statistics — everything the robustness
experiments report.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.adversary.base import Adversary
from repro.sketches.base import Sketch
from repro.streams.frequency import FrequencyVector
from repro.streams.model import Update

#: Computes the true value being estimated from the exact frequency vector.
TruthFn = Callable[[FrequencyVector], float]


def relative_error_judge(eps: float) -> Callable[[float, float], bool]:
    """Failure predicate for (1 ± eps)-approximation queries.

    A response R fails against truth g iff ``|R - g| > eps * |g|`` —
    the tracking requirement of Definition 2.1.  When g = 0 any nonzero
    response fails.
    """
    def judge(response: float, truth: float) -> bool:
        return abs(response - truth) > eps * abs(truth)
    return judge


def additive_error_judge(eps: float) -> Callable[[float, float], bool]:
    """Failure predicate for additive-eps queries (entropy)."""
    def judge(response: float, truth: float) -> bool:
        return abs(response - truth) > eps
    return judge


@dataclass
class GameResult:
    """Transcript and verdict of one adversarial game."""

    steps: int
    failed: bool
    first_failure_step: int | None
    responses: list[float] = field(repr=False)
    truths: list[float] = field(repr=False)
    updates: list[Update] = field(repr=False)

    @property
    def max_relative_error(self) -> float:
        worst = 0.0
        for r, g in zip(self.responses, self.truths):
            if g != 0:
                worst = max(worst, abs(r - g) / abs(g))
            elif r != 0:
                worst = max(worst, float("inf"))
        return worst

    @property
    def max_additive_error(self) -> float:
        return max(
            (abs(r - g) for r, g in zip(self.responses, self.truths)),
            default=0.0,
        )


class AdversarialGame:
    """Referee for algorithm-vs-adversary matches.

    Parameters
    ----------
    truth_fn:
        Ground-truth query evaluated on the exact frequency vector after
        every update (e.g. ``lambda f: f.f0()``).
    judge:
        Failure predicate ``(response, truth) -> bool``; see
        :func:`relative_error_judge` / :func:`additive_error_judge`.
    grace_steps:
        Number of initial steps exempt from judging.  Useful for
        estimators whose guarantee is asymptotic in the stream prefix
        (e.g. KMV is exact below k distinct items but a single fresh item
        right at the boundary flips bands); the theorems' guarantees are
        stated for all t, so experiments default to 0.
    """

    def __init__(
        self,
        truth_fn: TruthFn,
        judge: Callable[[float, float], bool],
        grace_steps: int = 0,
    ):
        self.truth_fn = truth_fn
        self.judge = judge
        self.grace_steps = grace_steps

    def run(
        self,
        algorithm: Sketch,
        adversary: Adversary,
        max_rounds: int,
        stop_at_failure: bool = False,
    ) -> GameResult:
        """Play up to ``max_rounds`` rounds; return the scored transcript."""
        truth = FrequencyVector()
        responses: list[float] = []
        truths: list[float] = []
        updates: list[Update] = []
        first_failure: int | None = None
        last_response: float | None = None
        for t in range(max_rounds):
            upd = adversary.next_update(t, last_response)
            if upd is None:
                break
            truth.update(upd.item, upd.delta)
            response = algorithm.process_update(upd.item, upd.delta)
            adversary.observe(t, response)
            g = self.truth_fn(truth)
            responses.append(response)
            truths.append(g)
            updates.append(upd)
            last_response = response
            if (
                first_failure is None
                and t >= self.grace_steps
                and self.judge(response, g)
            ):
                first_failure = t
                if stop_at_failure:
                    break
        return GameResult(
            steps=len(responses),
            failed=first_failure is not None,
            first_failure_step=first_failure,
            responses=responses,
            truths=truths,
            updates=updates,
        )
