"""Algorithm 3: the adaptive attack on the AMS sketch (Theorem 9.1).

The adversary first inserts ``(item 0, C * sqrt(t))``, driving the true F2
to ``C^2 t``.  Then for fresh items i = 1, 2, ...: insert i once and watch
the published estimate move.  Writing ``y = Sf`` before the insertion, the
estimate moves by ``1 + 2 <y, S e_i>``:

* moved by < 1  (``<y, S e_i> < 0``): insert i once more — the second
  insertion moves the estimate by ``3 + 4<y, Se_i>``, doubling down on a
  column anti-correlated with y;
* moved by > 1: leave it — the column is positively correlated and would
  grow the estimate;
* moved by exactly 1: fair coin decides.

Each doubled item drags ``|Sf|^2`` below the true F2 (which grows by 4
instead); Khintchine's inequality gives the expected drift
``E[s_{i+1}] <= s_i + 5/2 - sqrt(s_i / 2t)``, so after O(t) rounds the
estimate collapses below ``F2 / 2`` with probability 9/10.

The adversary only uses the *published estimates*, never the sketch
internals — it runs unchanged against any F2 tracker, which is how the
experiments show the sketch-switching tracker survives the same attack.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.base import Adversary
from repro.streams.model import Update


class AMSAttackAdversary(Adversary):
    """Algorithm 3, driven purely by observed estimates.

    Parameters
    ----------
    t:
        Row count of the attacked sketch; sets the initial heavy insertion
        ``C * sqrt(t)`` and the scale of the attack.
    rng:
        Source of the tie-breaking coin flips.
    constant:
        The paper's C (> 200 in the proof; the drift argument works for
        moderate constants in practice, and the default keeps the
        simulated streams short).
    """

    def __init__(self, t: int, rng: np.random.Generator, constant: float = 8.0):
        if t < 1:
            raise ValueError(f"sketch rows t must be >= 1, got {t}")
        self.t = t
        self.constant = constant
        self._rng = rng
        self._next_item = 1
        self._phase = "init"
        self._estimate_before: float | None = None
        self._pending_item: int | None = None

    def next_update(self, t: int, last_response: float | None) -> Update | None:
        if self._phase == "init":
            self._phase = "probe"
            heavy = max(1, round(self.constant * math.sqrt(self.t)))
            return Update(0, heavy)

        if self._phase == "probe":
            # Insert a fresh item once; decide on the follow-up after
            # observing how the estimate moved.
            self._estimate_before = last_response
            self._pending_item = self._next_item
            self._next_item += 1
            self._phase = "decide"
            return Update(self._pending_item, 1)

        # phase == "decide": we just observed the estimate after the single
        # insertion of _pending_item.
        assert last_response is not None and self._estimate_before is not None
        moved = last_response - self._estimate_before
        item = self._pending_item
        self._phase = "probe"
        double = moved < 1.0 or (moved == 1.0 and self._rng.random() < 0.5)
        if double:
            return Update(item, 1)
        # No second insertion: immediately move to probing the next item.
        return self.next_update(t, last_response)

    def items_probed(self) -> int:
        """Number of fresh items the attack has spent so far."""
        return self._next_item - 1


def run_ams_attack(
    sketch,
    rng: np.random.Generator,
    max_updates: int,
    fool_factor: float = 2.0,
    constant: float = 8.0,
    t: int | None = None,
):
    """Run Algorithm 3 against an F2 tracker; report when it gets fooled.

    The tracker must publish estimates of ``F2 = |f|_2^2`` (the attack's
    move-by-one logic lives on that scale).  ``t`` sizes the attack (the
    attacked sketch's row count); it defaults to the sketch's ``t``
    attribute, and must be given when attacking wrappers (e.g. the robust
    tracker survival experiment).

    Returns ``(fooled, updates_used, transcript)`` where ``fooled`` is True
    once the published estimate drops below ``true F2 / fool_factor``
    (Theorem 9.1's failure event), and ``transcript`` is the list of
    (estimate, truth) pairs.
    """
    from repro.streams.frequency import FrequencyVector

    if t is None:
        t = getattr(sketch, "t", None)
        if t is None:
            raise ValueError("pass t= explicitly when the sketch has no .t")
    adversary = AMSAttackAdversary(t=t, rng=rng, constant=constant)
    truth = FrequencyVector()
    transcript: list[tuple[float, float]] = []
    last: float | None = None
    for step in range(max_updates):
        upd = adversary.next_update(step, last)
        if upd is None:
            break
        truth.update(upd.item, upd.delta)
        last = sketch.process_update(upd.item, upd.delta)
        adversary.observe(step, last)
        f2 = truth.fp(2)
        transcript.append((last, f2))
        if last < f2 / fool_factor:
            return True, step + 1, transcript
    return False, len(transcript), transcript
