"""Adversary protocol for the two-player streaming game (Section 1).

The game proceeds in rounds: the adversary chooses an update (which may
depend on everything it has seen), the algorithm processes it and publishes
its response R_t, the adversary observes R_t.  An adversary here is any
object with ``next_update(t, last_response) -> Update | None`` (None ends
the stream early) and an optional ``observe`` hook for richer bookkeeping.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.streams.model import Update


class Adversary(abc.ABC):
    """One player of the adversarial game: produces updates adaptively."""

    @abc.abstractmethod
    def next_update(self, t: int, last_response: float | None) -> Update | None:
        """Choose the t-th update (0-indexed) given the previous response.

        ``last_response`` is None on the first round.  Returning None ends
        the stream (the adversary gives up or has exhausted its budget).
        """

    def observe(self, t: int, response: float) -> None:
        """Optional hook: the response R_t to the update just processed."""


class StaticAdversary(Adversary):
    """A non-adaptive adversary: replays a fixed stream, ignores responses.

    This is the static setting embedded in the game, used to sanity-check
    that robust algorithms lose nothing against oblivious streams.
    """

    def __init__(self, updates):
        self._updates = list(updates)

    def next_update(self, t: int, last_response: float | None) -> Update | None:
        if t >= len(self._updates):
            return None
        return self._updates[t]


class RandomAdversary(Adversary):
    """Oblivious random insertions — the weakest baseline opponent."""

    def __init__(self, n: int, m: int, rng: np.random.Generator):
        if n < 1 or m < 1:
            raise ValueError("need n >= 1 and m >= 1")
        self.n = n
        self.m = m
        self._rng = rng

    def next_update(self, t: int, last_response: float | None) -> Update | None:
        if t >= self.m:
            return None
        return Update(int(self._rng.integers(0, self.n)), 1)
