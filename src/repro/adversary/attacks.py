"""Additional adaptive attacks (extensions in the spirit of Section 9).

The paper proves non-robustness for the AMS sketch; these attacks extend
the negative-results suite to other classic static sketches, giving the
experiments more than one demonstration that "static guarantee" does not
survive adaptivity:

* :class:`CountMinInflationAttack` — inflates a victim item's CountMin
  point estimate: probe fresh items one at a time, keep hammering the ones
  whose insertion raised the victim's estimate (they collide with the
  victim in every argmin row).  The victim's true count stays 1 while its
  estimate grows without bound — breaking any (eps * F1) point-query
  guarantee long before F1 catches up.

* :class:`EstimateProbingAdversary` — a generic distinct-elements stressor:
  alternates fresh items with repeats of items whose insertion did not
  move the published estimate, maximising correlation between the stream
  and the sketch's internal sample.  Robust F0 algorithms shrug it off;
  it is used as a non-trivial (if not provably fooling) opponent in
  integration tests.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary
from repro.streams.model import Update


class CountMinInflationAttack(Adversary):
    """Adaptively inflate ``point_query(victim)`` of a CountMin sketch.

    The adversary only observes the published response, which for this
    game is the victim's estimated count.  Protocol: insert the victim
    once; then probe fresh items; any probe that raises the victim's
    estimate collides with it in all of its current argmin rows, so the
    attacker re-inserts that item ``hammer`` more times before resuming
    probing.
    """

    def __init__(
        self,
        victim: int,
        n: int,
        rng: np.random.Generator,
        hammer: int = 32,
    ):
        if hammer < 1:
            raise ValueError(f"hammer must be >= 1, got {hammer}")
        self.victim = victim
        self.n = n
        self.hammer = hammer
        self._rng = rng
        self._next_probe = victim + 1
        self._last_estimate: float | None = None
        self._hammer_left = 0
        self._hammer_item: int | None = None
        self._started = False

    def next_update(self, t: int, last_response: float | None) -> Update | None:
        if not self._started:
            self._started = True
            return Update(self.victim, 1)
        if self._hammer_left > 0 and self._hammer_item is not None:
            self._hammer_left -= 1
            return Update(self._hammer_item, 1)
        if (
            self._last_estimate is not None
            and last_response is not None
            and last_response > self._last_estimate
        ):
            # The previous probe collided: hammer it.
            self._hammer_item = self._next_probe - 1
            self._hammer_left = self.hammer - 1
            self._last_estimate = last_response
            return Update(self._hammer_item, 1)
        self._last_estimate = last_response
        probe = self._next_probe
        self._next_probe = probe + 1 if probe + 1 < self.n else self.victim + 1
        return Update(probe, 1)


class VictimPointQueryGame:
    """Tiny referee for point-query attacks: response = estimate of victim.

    Returns the step at which the victim's estimate exceeds
    ``threshold_factor * true count`` (or None if the attack failed within
    the budget).
    """

    def __init__(self, victim: int, threshold_factor: float = 5.0):
        self.victim = victim
        self.threshold_factor = threshold_factor

    def run(self, sketch, adversary: Adversary, max_rounds: int):
        from repro.streams.frequency import FrequencyVector

        truth = FrequencyVector()
        last: float | None = None
        for t in range(max_rounds):
            upd = adversary.next_update(t, last)
            if upd is None:
                break
            truth.update(upd.item, upd.delta)
            sketch.update(upd.item, upd.delta)
            last = sketch.point_query(self.victim)
            adversary.observe(t, last)
            true_count = max(1, truth[self.victim])
            if last >= self.threshold_factor * true_count:
                return t + 1
        return None


class EstimateProbingAdversary(Adversary):
    """Generic adaptive stressor for distinct-elements trackers.

    Inserts fresh items; whenever an insertion leaves the published
    estimate unchanged the item is remembered as "invisible" and re-probed
    in bursts later.  Against a non-robust sampler this maximises the
    correlation between the stream and the sketch's sample; against the
    paper's robust trackers the rounded outputs leak too little for the
    strategy to bite, which is exactly what the integration tests assert.
    """

    def __init__(self, n: int, rng: np.random.Generator, burst: int = 8):
        self.n = n
        self.burst = burst
        self._rng = rng
        self._fresh = 0
        self._invisible: list[int] = []
        self._prev_response: float | None = None
        self._burst_left = 0

    def next_update(self, t: int, last_response: float | None) -> Update | None:
        if (
            self._prev_response is not None
            and last_response is not None
            and last_response == self._prev_response
            and self._fresh > 0
        ):
            self._invisible.append(self._fresh - 1)
        self._prev_response = last_response
        if self._burst_left > 0 and self._invisible:
            self._burst_left -= 1
            pick = self._invisible[
                int(self._rng.integers(0, len(self._invisible)))
            ]
            return Update(pick, 1)
        if self._invisible and self._rng.random() < 0.25:
            self._burst_left = self.burst
        if self._fresh >= self.n:
            self._fresh = 0  # wrap: keep the game going
        item = self._fresh
        self._fresh += 1
        return Update(item, 1)
