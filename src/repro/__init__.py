"""repro — adversarially robust streaming algorithms.

A from-scratch reproduction of *"A Framework for Adversarially Robust
Streaming Algorithms"* (Ben-Eliezer, Jayaram, Woodruff, Yogev — PODS 2020).

Public API layers:

* :mod:`repro.streams` — the data stream model, exact frequency vectors,
  workload generators and validators;
* :mod:`repro.hashing` — k-wise families, random oracle, PRF, Feistel PRP;
* :mod:`repro.sketches` — static (non-robust) sketches: AMS, CountSketch,
  CountMin, Misra–Gries, KMV, fast level lists, HLL, p-stable, high
  moments, entropy;
* :mod:`repro.core` — the paper's contribution: flip numbers,
  epsilon-rounding, sketch switching (Algorithm 1), computation paths
  (Lemma 3.8);
* :mod:`repro.engine` — the parallel execution engine: shard planning,
  serial/process executors over shared-memory chunk buffers, and
  double-buffered prefetching for oblivious replay;
* :mod:`repro.adversary` — the two-player game and concrete attacks,
  including Algorithm 3 against AMS;
* :mod:`repro.robust` — one robust algorithm per theorem;
* :mod:`repro.obs` — observability: a metrics registry, structured
  protocol trace events with pluggable sinks, and cross-worker span
  aggregation (``ingest(telemetry=...)``, ``python -m repro trace``).

Quickstart::

    import numpy as np
    from repro.robust import RobustDistinctElements
    from repro.adversary import AdversarialGame, RandomAdversary, \
        relative_error_judge

    rng = np.random.default_rng(0)
    algo = RobustDistinctElements(n=10_000, m=5_000, eps=0.2, rng=rng)
    game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.2))
    result = game.run(algo, RandomAdversary(10_000, 5_000, rng), 5_000)
    assert not result.failed
"""

from repro import (
    adversary,
    core,
    engine,
    hashing,
    obs,
    robust,
    sketches,
    streams,
)
from repro.api import (
    PROBLEMS,
    IngestReport,
    ingest,
    install_telemetry,
    robust_estimator,
)

__version__ = "1.2.0"

__all__ = [
    "adversary",
    "core",
    "engine",
    "hashing",
    "obs",
    "robust",
    "sketches",
    "streams",
    "PROBLEMS",
    "IngestReport",
    "ingest",
    "install_telemetry",
    "robust_estimator",
    "__version__",
]
