"""Table 1 reproduction: one experiment per row.

Each function builds the row's contenders (deterministic baseline, static
randomized sketch, adversarially robust algorithm(s)), runs them over the
row's workload, and returns an :class:`ExperimentResult` whose shape can
be checked against the paper's claims:

* robust space = static space x poly(eps^-1, log) — far below the
  deterministic baselines' Omega(n) / Omega(sqrt n) growth;
* every algorithm stays inside its error band, including under adaptive
  adversaries.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import Scale
from repro.experiments.records import ExperimentResult, space_kib
from repro.experiments.runner import run_additive, run_relative
from repro.robust.bounded_deletion import RobustBoundedDeletionFp
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.distinct import (
    FastRobustDistinctElements,
    RobustDistinctElements,
)
from repro.robust.entropy import RobustEntropy
from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.robust.moments import (
    RobustFpHigh,
    RobustFpPaths,
    RobustFpSwitching,
    RobustTurnstileFp,
)
from repro.sketches.countsketch import CountSketch
from repro.sketches.entropy import CliffordCosmaSketch
from repro.sketches.exact import (
    ExactDistinctCounter,
    ExactEntropyCounter,
    ExactMomentCounter,
)
from repro.sketches.fp_high import HighMomentSketch
from repro.sketches.kmv import KMVSketch
from repro.sketches.misra_gries import MisraGries
from repro.sketches.stable import PStableSketch
from repro.streams.frequency import FrequencyVector
from repro.streams.generators import (
    bounded_deletion_stream,
    phased_support_stream,
    planted_heavy_hitters_stream,
    turnstile_wave_stream,
    zipfian_stream,
)
from repro.streams.model import Update

_COLS = ["algorithm", "space", "worst err", "mean err", "sec"]


def _row(result: ExperimentResult, name: str, stats) -> None:
    result.add_row(name, space_kib(stats.space_bits), stats.worst_error,
                   stats.mean_error, f"{stats.seconds:.1f}")
    result.metrics[f"{name}/worst"] = stats.worst_error
    result.metrics[f"{name}/bits"] = float(stats.space_bits)


def t1_distinct(scale: Scale) -> ExperimentResult:
    """Row 1: distinct elements (F0)."""
    rng = np.random.default_rng(scale.seed)
    seeds = [int(s) for s in rng.integers(0, 2**31, size=8)]
    updates = [Update(i % scale.n, 1) for i in range(scale.m)]
    contenders = [
        ("exact (deterministic)", ExactDistinctCounter()),
        ("static KMV", KMVSketch.for_accuracy(
            scale.eps, 0.05, np.random.default_rng(seeds[0]))),
        ("robust switching (T5.1)", RobustDistinctElements(
            n=scale.n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(seeds[1]))),
        ("robust fast paths (T5.4)", FastRobustDistinctElements(
            n=scale.n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(seeds[2]))),
        ("robust crypto (T10.1)", CryptoRobustDistinctElements(
            n=scale.n, eps=scale.eps, rng=np.random.default_rng(seeds[3]))),
    ]
    result = ExperimentResult(
        "T1.F0", "Table 1 row 1 — distinct elements", _COLS
    )
    for name, algo in contenders:
        _row(result, name, run_relative(
            algo, updates, lambda f: f.f0(), skip=150))
    result.add_note(
        f"n={scale.n}, m={scale.m}, eps={scale.eps}; fresh-item stream "
        "(worst-case flip number)"
    )
    return result


def t1_fp(scale: Scale, p: float = 2.0) -> ExperimentResult:
    """Row 2: Fp estimation, 0 < p <= 2 (norm tracking)."""
    updates = zipfian_stream(
        min(scale.n, 1024), scale.m, np.random.default_rng(scale.seed)
    )
    n = min(scale.n, 1024)
    contenders = [
        ("exact (deterministic)", ExactMomentCounter(p, return_norm=True)),
        ("static p-stable", PStableSketch.for_accuracy(
            p, scale.eps, 0.05, np.random.default_rng(scale.seed + 1))),
        ("robust switching (T4.1)", RobustFpSwitching(
            p=p, n=n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(scale.seed + 2), copies=16)),
        ("robust comp-paths (T4.2)", RobustFpPaths(
            p=p, n=n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(scale.seed + 3))),
    ]
    result = ExperimentResult(
        "T1.Fp", f"Table 1 row 2 — F_p estimation (p={p})", _COLS
    )
    for name, algo in contenders:
        _row(result, name, run_relative(
            algo, updates, lambda f: f.lp(p), skip=150))
    result.add_note(f"p={p}, n={n}, m={scale.m}, eps={scale.eps}; zipfian")
    return result


def t1_fp_high(scale: Scale, p: float = 3.0) -> ExperimentResult:
    """Row 3: Fp estimation, p > 2."""
    n = min(scale.n, 512)
    updates = zipfian_stream(n, scale.m, np.random.default_rng(scale.seed),
                             s=1.6)
    contenders = [
        ("exact (deterministic)", ExactMomentCounter(p)),
        ("static level-set", HighMomentSketch.for_accuracy(
            p, n, scale.eps, np.random.default_rng(scale.seed + 1))),
        ("robust comp-paths (T4.4)", RobustFpHigh(
            p=p, n=n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(scale.seed + 2))),
    ]
    result = ExperimentResult(
        "T1.FpHigh", f"Table 1 row 3 — F_p estimation (p={p} > 2)", _COLS
    )
    for name, algo in contenders:
        _row(result, name, run_relative(
            algo, updates, lambda f: f.fp(p), skip=max(300, scale.m // 10)))
    result.add_note(f"p={p}, n={n}, m={scale.m}, eps={scale.eps}; "
                    "zipfian(1.6) — the data-skew workload of [12]")
    return result


def t1_heavy_hitters(scale: Scale) -> ExperimentResult:
    """Row 4: L2 heavy hitters."""
    n = min(scale.n, 2048)
    updates = planted_heavy_hitters_stream(
        n, scale.m, np.random.default_rng(scale.seed),
        heavy_items=6, heavy_mass=0.55,
    )
    truth = FrequencyVector()
    mg = MisraGries.for_l2_baseline(n)
    cs = CountSketch.for_accuracy(scale.eps / 2, 0.01, n,
                                  np.random.default_rng(scale.seed + 1))
    robust = RobustHeavyHitters(n=n, m=scale.m, eps=scale.eps,
                                rng=np.random.default_rng(scale.seed + 2),
                                copies=10)
    for u in updates:
        truth.update(u.item, u.delta)
        mg.update(u.item, u.delta)
        cs.update(u.item, u.delta)
        robust.update(u.item, u.delta)
    l2 = truth.lp(2)
    true_heavy = truth.l2_heavy_hitters(scale.eps)
    found = {
        "Misra-Gries sqrt(n) (determ.)": mg.heavy_hitters(scale.eps * l2),
        "static CountSketch": cs.heavy_hitters(0.75 * scale.eps * l2),
        "robust (T6.5)": robust.heavy_hitters(),
    }
    spaces = {
        "Misra-Gries sqrt(n) (determ.)": mg.space_bits(),
        "static CountSketch": cs.space_bits(),
        "robust (T6.5)": robust.space_bits(),
    }
    result = ExperimentResult(
        "T1.HH", "Table 1 row 4 — L2 heavy hitters",
        ["algorithm", "space", "found", "missed", "spurious"],
    )
    for name, s in found.items():
        missed = len(true_heavy - s)
        spurious = sum(1 for i in s if truth[i] < (scale.eps / 2) * l2)
        result.add_row(name, space_kib(spaces[name]), len(s), missed, spurious)
        result.metrics[f"{name}/missed"] = float(missed)
        result.metrics[f"{name}/spurious"] = float(spurious)
    result.add_note(
        f"n={n}, m={scale.m}, eps={scale.eps}; 6 planted heavies; "
        f"|true heavy set| = {len(true_heavy)}"
    )
    return result


def t1_entropy(scale: Scale) -> ExperimentResult:
    """Row 5: entropy estimation (additive eps, bits)."""
    n = min(scale.n, 1024)
    eps = max(scale.eps, 0.4)  # additive bits; CC rows scale as 1/eps^2
    updates = phased_support_stream(n, scale.m,
                                    np.random.default_rng(scale.seed))
    contenders = [
        ("exact (deterministic)", ExactEntropyCounter()),
        ("static Clifford-Cosma", CliffordCosmaSketch.for_accuracy(
            eps / 2, 0.05, np.random.default_rng(scale.seed + 1))),
        ("robust switching (T7.3)", RobustEntropy(
            n=n, m=scale.m, eps=eps,
            rng=np.random.default_rng(scale.seed + 2), copies=24)),
    ]
    result = ExperimentResult(
        "T1.H", "Table 1 row 5 — entropy estimation",
        ["algorithm", "space", "worst +err", "mean +err", "sec"],
    )
    for name, algo in contenders:
        stats = run_additive(algo, updates, lambda f: f.shannon_entropy(),
                             skip=150)
        result.add_row(name, space_kib(stats.space_bits), stats.worst_error,
                       stats.mean_error, f"{stats.seconds:.1f}")
        result.metrics[f"{name}/worst"] = stats.worst_error
        result.metrics[f"{name}/bits"] = float(stats.space_bits)
    result.add_note(f"n={n}, m={scale.m}, additive eps={eps} bits; "
                    "phased stream sweeping low -> high entropy")
    return result


def t1_turnstile(scale: Scale) -> ExperimentResult:
    """Row 6: turnstile Fp for lambda-bounded flip-number streams."""
    from repro.core.flip_number import measured_flip_number
    from repro.streams.validators import function_trajectory

    n = min(scale.n, 256)
    eps = max(scale.eps, 0.4)
    result = ExperimentResult(
        "T1.Turnstile", "Table 1 row 6 — turnstile F2, class S_lambda",
        ["waves", "flips (meas.)", "lam promise", "worst err", "space"],
    )
    for waves in (2, 4):
        updates = turnstile_wave_stream(
            n, scale.m, np.random.default_rng(scale.seed + waves), waves=waves
        )
        traj = function_trajectory(updates, lambda f: f.fp(2))
        flips = measured_flip_number(traj, eps / 2)
        lam = max(64, 2 * flips)
        algo = RobustTurnstileFp(
            p=2.0, n=n, m=scale.m, eps=eps, lam=lam,
            rng=np.random.default_rng(scale.seed + 50 + waves),
        )
        stats = run_relative(algo, updates, lambda f: f.fp(2),
                             skip=60, floor=25.0)
        result.add_row(waves, flips, lam, stats.worst_error,
                       space_kib(stats.space_bits))
        result.metrics[f"waves={waves}/worst"] = stats.worst_error
        result.metrics[f"waves={waves}/flips"] = float(flips)
        result.metrics[f"waves={waves}/lam"] = float(lam)
    result.add_note(f"n={n}, m={scale.m}, eps={eps}; insert/delete waves "
                    "(the [25] hard-instance family)")
    return result


def t1_bounded_deletion(scale: Scale) -> ExperimentResult:
    """Row 7: Fp under alpha-bounded deletions."""
    from repro.core.flip_number import (
        bounded_deletion_flip_number_bound,
        measured_flip_number,
    )
    from repro.streams.validators import (
        check_bounded_deletion,
        function_trajectory,
    )

    n = min(scale.n, 128)
    eps = max(scale.eps, 0.35)
    p = 1.0
    result = ExperimentResult(
        "T1.BD", "Table 1 row 7 — alpha-bounded-deletion F1",
        ["alpha", "flips (meas.)", "flip bound", "worst err", "space"],
    )
    for alpha in (2.0, 8.0):
        updates = bounded_deletion_stream(
            n, scale.m, np.random.default_rng(scale.seed + int(alpha)),
            alpha=alpha, p=p,
        )
        if not check_bounded_deletion(updates, alpha, p=p):
            raise RuntimeError("generator produced an out-of-class stream")
        traj = function_trajectory(updates, lambda f: f.lp(p))
        flips = measured_flip_number(traj, eps / 2)
        bound = bounded_deletion_flip_number_bound(eps / 2, n, p, alpha,
                                                   M=scale.m)
        algo = RobustBoundedDeletionFp(
            p=p, n=n, m=scale.m, eps=eps, alpha=alpha,
            rng=np.random.default_rng(scale.seed + 90 + int(alpha)),
        )
        stats = run_relative(algo, updates, lambda f: f.fp(p),
                             skip=100, floor=20.0)
        result.add_row(alpha, flips, bound, stats.worst_error,
                       space_kib(stats.space_bits))
        result.metrics[f"alpha={alpha}/worst"] = stats.worst_error
        result.metrics[f"alpha={alpha}/flips"] = float(flips)
        result.metrics[f"alpha={alpha}/bound"] = float(bound)
    result.add_note(f"n={n}, m={scale.m}, eps={eps}, p={p}; streams satisfy "
                    "Definition 8.1 by construction")
    return result
