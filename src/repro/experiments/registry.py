"""Experiment registry: every reproducible artifact, addressable by id.

The ids match DESIGN.md's per-experiment index.  ``run(experiment_id)``
executes one experiment at a given scale; ``run_all`` regenerates the
whole evaluation (what EXPERIMENTS.md records).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import table1, theorems
from repro.experiments.config import Scale, get_scale
from repro.experiments.records import ExperimentResult

ExperimentFn = Callable[[Scale], ExperimentResult]

EXPERIMENTS: dict[str, ExperimentFn] = {
    "T1.F0": table1.t1_distinct,
    "T1.Fp": table1.t1_fp,
    "T1.FpHigh": table1.t1_fp_high,
    "T1.HH": table1.t1_heavy_hitters,
    "T1.H": table1.t1_entropy,
    "T1.Turnstile": table1.t1_turnstile,
    "T1.BD": table1.t1_bounded_deletion,
    "E.AMS": theorems.e_ams_attack,
    "E.AMS.robust": theorems.e_ams_survival,
    "E.Fast": theorems.e_fast_update_time,
    "E.Flip": theorems.e_flip_numbers,
    "E.Crypto": theorems.e_crypto_space,
    "E.Switch": theorems.e_framework_crossover,
    "E.Switch.runoff": theorems.e_framework_runoff,
    "E.Engine": theorems.e_engine_bands,
    "E.DP": theorems.e_dp_discipline,
    "E.DPDE": theorems.e_dpde_ladder,
}


def list_experiments() -> list[str]:
    """All registered experiment ids, in Table-then-theorem order."""
    return list(EXPERIMENTS.keys())


def run(experiment_id: str, scale: str | Scale = "quick") -> ExperimentResult:
    """Run one experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {list_experiments()}"
        ) from None
    if isinstance(scale, str):
        scale = get_scale(scale)
    return fn(scale)


def run_all(scale: str | Scale = "quick") -> list[ExperimentResult]:
    """Run every registered experiment."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    return [fn(scale) for fn in EXPERIMENTS.values()]
