"""Stream runners shared by every experiment.

These feed a stream to an estimator while scoring every published output
against the exact ground truth — the measurement protocol behind all the
Table-1 rows.  Both multiplicative (Fp, F0, heavy hitters) and additive
(entropy) judging are provided, plus a contender sweep helper.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.streams.frequency import FrequencyVector
from repro.streams.model import Update

TruthFn = Callable[[FrequencyVector], float]


@dataclass(frozen=True)
class RunStats:
    """Error/timing/space summary of one algorithm over one stream."""

    worst_error: float
    mean_error: float
    seconds: float
    space_bits: int
    steps_judged: int


def run_relative(
    algo,
    updates: Sequence[Update],
    truth_fn: TruthFn,
    skip: int = 100,
    floor: float = 0.0,
) -> RunStats:
    """Relative-error scoring: err = |R_t - g| / |g| per step."""
    truth = FrequencyVector()
    worst = total = 0.0
    judged = 0
    start = time.perf_counter()
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        g = truth_fn(truth)
        if t >= skip and abs(g) > floor:
            err = abs(out - g) / abs(g)
            worst = max(worst, err)
            total += err
            judged += 1
    secs = time.perf_counter() - start
    return RunStats(
        worst_error=worst,
        mean_error=total / judged if judged else 0.0,
        seconds=secs,
        space_bits=algo.space_bits(),
        steps_judged=judged,
    )


def run_additive(
    algo,
    updates: Sequence[Update],
    truth_fn: TruthFn,
    skip: int = 100,
) -> RunStats:
    """Additive-error scoring: err = |R_t - g| per step (entropy)."""
    truth = FrequencyVector()
    worst = total = 0.0
    judged = 0
    start = time.perf_counter()
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        g = truth_fn(truth)
        if t >= skip:
            err = abs(out - g)
            worst = max(worst, err)
            total += err
            judged += 1
    secs = time.perf_counter() - start
    return RunStats(
        worst_error=worst,
        mean_error=total / judged if judged else 0.0,
        seconds=secs,
        space_bits=algo.space_bits(),
        steps_judged=judged,
    )


def sweep_contenders(
    contenders: Sequence[tuple[str, object]],
    updates: Sequence[Update],
    truth_fn: TruthFn,
    skip: int = 100,
    floor: float = 0.0,
    additive: bool = False,
) -> dict[str, RunStats]:
    """Run every (name, algorithm) pair over the same stream."""
    runner = run_additive if additive else run_relative
    out: dict[str, RunStats] = {}
    for name, algo in contenders:
        if additive:
            out[name] = runner(algo, updates, truth_fn, skip=skip)
        else:
            out[name] = runner(algo, updates, truth_fn, skip=skip, floor=floor)
    return out
