"""Stream runners shared by every experiment.

These feed a stream to an estimator while scoring every published output
against the exact ground truth — the measurement protocol behind all the
Table-1 rows.  Both multiplicative (Fp, F0, heavy hitters) and additive
(entropy) judging are provided, plus a contender sweep helper.

Two ingestion modes:

* **per-item** (``chunk_size=None``) — the historical path: one
  ``process_update`` per update, judged after every step.  This is the
  round structure of the adversarial setting and stays the only mode the
  adversarial game uses.
* **batched** (``chunk_size=k``) — oblivious replay through the
  vectorized ``update_batch`` pipeline: the stream is sliced into
  :class:`~repro.streams.model.StreamChunk` arrays, estimator and ground
  truth consume whole chunks, and the published output is judged at chunk
  boundaries.  Orders of magnitude faster; ``items_per_sec`` in
  :class:`RunStats` records the achieved throughput in both modes.

Batched runs additionally accept an execution engine (``engine=`` — a
name like ``"process:4"`` or an :class:`repro.engine.ExecutionEngine`):
the estimator is driven through an engine session, fanning switching
copies across worker processes, with the same boundary judging.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.engine.executor import resolve_engine
from repro.streams.frequency import FrequencyVector
from repro.streams.model import Update, chunk_updates, iter_updates

TruthFn = Callable[[FrequencyVector], float]


@dataclass(frozen=True)
class RunStats:
    """Error/timing/space summary of one algorithm over one stream."""

    worst_error: float
    mean_error: float
    seconds: float
    space_bits: int
    steps_judged: int
    items_per_sec: float = 0.0


def _finalize(
    worst: float, total: float, judged: int, secs: float, items: int, algo
) -> RunStats:
    return RunStats(
        worst_error=worst,
        mean_error=total / judged if judged else 0.0,
        seconds=secs,
        space_bits=algo.space_bits(),
        steps_judged=judged,
        items_per_sec=items / secs if secs > 0 else 0.0,
    )


def run_relative(
    algo,
    updates: Sequence[Update],
    truth_fn: TruthFn,
    skip: int = 100,
    floor: float = 0.0,
    chunk_size: int | None = None,
    engine=None,
    telemetry=None,
) -> RunStats:
    """Relative-error scoring: err = |R_t - g| / |g| per judged step.

    With ``chunk_size`` set, the stream is replayed batched and judged at
    chunk boundaries (oblivious-replay semantics); ``engine`` then
    selects the execution engine for the batched feeds, and
    ``telemetry`` (anything :func:`repro.obs.resolve_telemetry` accepts)
    binds an observability hub to the estimator's switching core for the
    replay — judging is unchanged; telemetry only observes.
    """
    if chunk_size is not None:
        return _run_chunked(
            algo, updates, truth_fn, chunk_size,
            skip=skip, floor=floor, additive=False, engine=engine,
            telemetry=telemetry,
        )
    if telemetry is not None:
        raise ValueError("telemetry= requires chunk_size= (batched replay)")
    if engine is not None:
        raise ValueError("engine= requires chunk_size= (batched replay)")
    truth = FrequencyVector()
    worst = total = 0.0
    judged = 0
    count = 0
    start = time.perf_counter()
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        count += 1
        g = truth_fn(truth)
        if t >= skip and abs(g) > floor:
            err = abs(out - g) / abs(g)
            worst = max(worst, err)
            total += err
            judged += 1
    secs = time.perf_counter() - start
    return _finalize(worst, total, judged, secs, count, algo)


def run_additive(
    algo,
    updates: Sequence[Update],
    truth_fn: TruthFn,
    skip: int = 100,
    chunk_size: int | None = None,
    engine=None,
    telemetry=None,
) -> RunStats:
    """Additive-error scoring: err = |R_t - g| per judged step (entropy)."""
    if chunk_size is not None:
        return _run_chunked(
            algo, updates, truth_fn, chunk_size, skip=skip, additive=True,
            engine=engine, telemetry=telemetry,
        )
    if telemetry is not None:
        raise ValueError("telemetry= requires chunk_size= (batched replay)")
    if engine is not None:
        raise ValueError("engine= requires chunk_size= (batched replay)")
    truth = FrequencyVector()
    worst = total = 0.0
    judged = 0
    count = 0
    start = time.perf_counter()
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        count += 1
        g = truth_fn(truth)
        if t >= skip:
            err = abs(out - g)
            worst = max(worst, err)
            total += err
            judged += 1
    secs = time.perf_counter() - start
    return _finalize(worst, total, judged, secs, count, algo)


def _run_chunked(
    algo,
    updates,
    truth_fn: TruthFn,
    chunk_size: int,
    skip: int = 100,
    floor: float = 0.0,
    additive: bool = False,
    engine=None,
    telemetry=None,
) -> RunStats:
    """Batched oblivious replay, judged at chunk boundaries.

    Accepts anything :func:`repro.streams.model.chunk_updates` accepts —
    a list of Updates, plain items, or an iterable of StreamChunks (the
    array-native generators), so million-update streams never materialise
    per-update Python objects.  With ``engine`` set, the estimator is
    fed through an engine session instead of direct ``update_batch``
    calls (same boundary outputs for exact-state sketches).
    """
    resolved = resolve_engine(engine)
    if telemetry is not None:
        # Lazy import: repro.api pulls in every robust wrapper; keep the
        # runner import-light for experiments that never trace.
        from repro.api import install_telemetry
        from repro.obs import resolve_telemetry

        tele = resolve_telemetry(telemetry)
        if tele is not None:
            install_telemetry(algo, tele)
    truth = FrequencyVector()
    worst = total = 0.0
    judged = 0
    count = 0
    session = None
    start = time.perf_counter()
    try:
        if resolved is not None:
            session = resolved.session(algo)
        for chunk in chunk_updates(updates, chunk_size):
            truth.update_batch(chunk.items, chunk.deltas)
            if session is None:
                algo.update_batch(chunk.items, chunk.deltas)
                out = algo.query()
            else:
                session.feed(chunk.items, chunk.deltas)
                out = session.query()
            count += len(chunk)
            g = truth_fn(truth)
            if count >= skip:
                if additive:
                    err = abs(out - g)
                elif abs(g) > floor:
                    err = abs(out - g) / abs(g)
                else:
                    continue
                worst = max(worst, err)
                total += err
                judged += 1
        if session is not None:
            session.finalize()
            session = None
    finally:
        if session is not None:
            session.close()
    secs = time.perf_counter() - start
    return _finalize(worst, total, judged, secs, count, algo)


def sweep_contenders(
    contenders: Sequence[tuple[str, object]],
    updates: Sequence[Update],
    truth_fn: TruthFn,
    skip: int = 100,
    floor: float = 0.0,
    additive: bool = False,
    chunk_size: int | None = None,
    engine=None,
    telemetry=None,
) -> dict[str, RunStats]:
    """Run every (name, algorithm) pair over the same stream.

    Generator inputs (e.g. the array-native chunk generators) are
    materialised once up front — each contender must see the *same*
    stream, and a consumable iterable would leave every contender after
    the first with an empty replay.
    """
    if not isinstance(updates, Sequence):
        updates = list(updates)
        if chunk_size is None:
            # Per-item judging needs Update granularity even when the
            # materialised stream arrived as StreamChunks.
            updates = list(iter_updates(updates))
    out: dict[str, RunStats] = {}
    for name, algo in contenders:
        if additive:
            out[name] = run_additive(
                algo, updates, truth_fn, skip=skip, chunk_size=chunk_size,
                engine=engine, telemetry=telemetry,
            )
        else:
            out[name] = run_relative(
                algo, updates, truth_fn, skip=skip, floor=floor,
                chunk_size=chunk_size, engine=engine, telemetry=telemetry,
            )
    return out
