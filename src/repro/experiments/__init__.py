"""Experiment harness: runners, registry, CLI for regenerating the paper's
evaluation (Table 1 rows + theorem-level experiments)."""

from repro.experiments.config import FULL, QUICK, SCALES, Scale, get_scale
from repro.experiments.records import ExperimentResult, space_kib
from repro.experiments.registry import (
    EXPERIMENTS,
    list_experiments,
    run,
    run_all,
)
from repro.experiments.runner import (
    RunStats,
    run_additive,
    run_relative,
    sweep_contenders,
)

__all__ = [
    "FULL",
    "QUICK",
    "SCALES",
    "Scale",
    "get_scale",
    "ExperimentResult",
    "space_kib",
    "EXPERIMENTS",
    "list_experiments",
    "run",
    "run_all",
    "RunStats",
    "run_additive",
    "run_relative",
    "sweep_contenders",
]
