"""Experiment result records and plain-text rendering.

Every reproduction experiment returns an :class:`ExperimentResult`: an id
(matching DESIGN.md's per-experiment index), a title, tabular rows, and
free-form notes.  The renderer produces the fixed-width tables that
EXPERIMENTS.md and the benchmark outputs embed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One regenerated table/figure/theorem experiment."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Machine-readable scalars for assertions (e.g. {"worst_err": 0.12}).
    metrics: dict[str, float] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Fixed-width text table with title and notes."""
        cells = [[str(c) for c in self.columns]]
        cells += [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [f"[{self.experiment_id}] {self.title}", ""]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.extend(self.notes)
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def space_kib(bits: int | float) -> str:
    """Render a bit count as KiB with one decimal."""
    return f"{bits / 8 / 1024:.1f} KiB"
