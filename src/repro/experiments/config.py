"""Experiment scale presets.

``QUICK`` finishes each experiment in seconds (CI / laptop smoke);
``FULL`` is the EXPERIMENTS.md configuration.  Both keep the paper's
parameter *relationships* (eps bands, flip budgets) and differ only in
stream length / universe size / trial counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Knobs every experiment reads."""

    name: str
    n: int            # universe size
    m: int            # stream length
    eps: float        # headline accuracy for multiplicative rows
    trials: int       # repetition count for probabilistic claims
    seed: int = 2020  # PODS 2020


QUICK = Scale(name="quick", n=1 << 12, m=1500, eps=0.3, trials=3)
FULL = Scale(name="full", n=1 << 14, m=5000, eps=0.25, trials=6)

SCALES = {"quick": QUICK, "full": FULL}


def get_scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None
