"""Theorem-level experiments: the attack, update time, flip numbers,
crypto space, the framework ablation, and the band-policy engine check."""

from __future__ import annotations

import math
import time

import numpy as np

from repro.adversary.ams_attack import run_ams_attack
from repro.core.computation_paths import required_log2_delta0
from repro.core.flip_number import (
    bounded_deletion_flip_number_bound,
    entropy_flip_number_bound,
    fp_flip_number_bound,
    lp_norm_flip_number_bound,
    measured_flip_number,
    monotone_flip_number_bound,
)
from repro.core.tracking import MedianTracker, median_copies
from repro.experiments.config import Scale
from repro.experiments.records import ExperimentResult, space_kib
from repro.experiments.runner import run_relative
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.distinct import (
    FastRobustDistinctElements,
    RobustDistinctElements,
)
from repro.robust.moments import RobustFpSwitching
from repro.sketches.ams import AMSFullSketch
from repro.sketches.fast_f0 import FastF0Sketch
from repro.sketches.kmv import KMVSketch
from repro.streams.generators import (
    bounded_deletion_stream,
    distinct_ramp_stream,
    phased_support_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.model import Update
from repro.streams.validators import function_trajectory


def e_ams_attack(scale: Scale) -> ExperimentResult:
    """Theorem 9.1: attack success rate and O(t) update budget."""
    result = ExperimentResult(
        "E.AMS", "Theorem 9.1 — Algorithm 3 vs the AMS sketch",
        ["t", "fooled", "median steps", "steps/t"],
    )
    for t in (16, 64, 128):
        fooled = 0
        steps = []
        for trial in range(scale.trials):
            sketch = AMSFullSketch(
                t=t, n=8192,
                rng=np.random.default_rng(scale.seed + 1000 * t + trial),
            )
            ok, used, _ = run_ams_attack(
                sketch, np.random.default_rng(trial), max_updates=60 * t
            )
            fooled += ok
            if ok:
                steps.append(used)
        med = int(np.median(steps)) if steps else -1
        result.add_row(t, f"{fooled}/{scale.trials}", med,
                       f"{med / t:.1f}" if med > 0 else "-")
        result.metrics[f"t={t}/fooled"] = float(fooled)
        result.metrics[f"t={t}/median_steps"] = float(med)
    result.add_note("Theorem 9.1 shape: success w.p. >= 9/10 within O(t) "
                    "updates (observed constant ~10-15)")
    return result


def e_ams_survival(scale: Scale) -> ExperimentResult:
    """Section 1.1 contrast: the robust tracker under the same attack."""
    algo = RobustFpSwitching(
        p=2.0, n=8192, m=3000, eps=0.4,
        rng=np.random.default_rng(scale.seed),
        track="moment", copies=16, stable_constant=3.0,
    )
    fooled, steps, transcript = run_ams_attack(
        algo, np.random.default_rng(scale.seed + 1), max_updates=1000, t=64
    )
    worst = max(abs(e - g) / g for e, g in transcript if g > 0)
    result = ExperimentResult(
        "E.AMS.robust", "Robust F2 tracker under Algorithm 3",
        ["metric", "value"],
    )
    result.add_row("adversarial updates survived", steps)
    result.add_row("fooled (est < F2/2)", str(fooled))
    result.add_row("worst relative error", worst)
    result.metrics["fooled"] = float(fooled)
    result.metrics["worst"] = worst
    result.add_note("band eps=0.4; same adversary that breaks plain AMS")
    return result


def e_fast_update_time(scale: Scale) -> ExperimentResult:
    """Lemma 5.2: update time flat in delta vs log(1/delta) for medians."""
    result = ExperimentResult(
        "E.Fast", "Lemma 5.2 — update-time dependence on delta",
        ["log2(1/delta)", "level-list sec", "d", "median-stack sec", "copies"],
    )
    m = min(scale.m, 4000)
    for log2_inv in (10, 30):
        delta = 2.0**-log2_inv
        fast = FastF0Sketch(n=scale.n, eps=scale.eps, delta=delta,
                            rng=np.random.default_rng(scale.seed))
        copies = median_copies(delta, base_failure=0.25, constant=0.25)
        stack = MedianTracker(
            lambda r: KMVSketch.for_accuracy(scale.eps, 0.25, r, constant=2.0),
            copies=copies, rng=np.random.default_rng(scale.seed + 1),
        )
        t0 = time.perf_counter()
        for i in range(m):
            fast.update(i)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(m):
            stack.update(i)
        t_stack = time.perf_counter() - t0
        result.add_row(log2_inv, f"{t_fast:.3f}", fast.d, f"{t_stack:.3f}",
                       copies)
        result.metrics[f"d{log2_inv}/fast"] = t_fast
        result.metrics[f"d{log2_inv}/stack"] = t_stack
    result.add_note(f"{m} updates each; level-list cost is flat in delta, "
                    "the median stack pays the log(1/delta) copies in time")
    return result


def e_flip_numbers(scale: Scale) -> ExperimentResult:
    """Corollary 3.5 / Prop 7.2 / Lemma 8.2: measured vs bounds."""
    rng = np.random.default_rng(scale.seed)
    n = min(scale.n, 256)
    m = scale.m
    eps = scale.eps
    cases = {
        "F0 / fresh items": (
            distinct_ramp_stream(m, m), lambda f: f.f0(),
            fp_flip_number_bound(eps, m, 0, M=m)),
        "F0 / uniform": (
            uniform_stream(n, m, rng), lambda f: f.f0(),
            fp_flip_number_bound(eps, n, 0, M=m)),
        "L2 norm / zipfian": (
            zipfian_stream(n, m, rng), lambda f: f.lp(2),
            lp_norm_flip_number_bound(eps, n, 2, M=m)),
        "F2 moment / zipfian": (
            zipfian_stream(n, m, rng), lambda f: f.fp(2),
            fp_flip_number_bound(eps, n, 2, M=m)),
        "2^H / phased": (
            phased_support_stream(n, m, rng),
            lambda f: 2 ** f.shannon_entropy(),
            entropy_flip_number_bound(eps, n, m, M=m)),
        "L1 / bounded-deletion a=4": (
            bounded_deletion_stream(n, m, rng, alpha=4.0),
            lambda f: f.lp(1),
            bounded_deletion_flip_number_bound(eps, n, 1, 4.0, M=m)),
    }
    result = ExperimentResult(
        "E.Flip", "Flip numbers: measured vs analytic bounds",
        ["trajectory", "measured", "bound"],
    )
    for name, (updates, fn, bound) in cases.items():
        traj = function_trajectory(updates, fn)
        measured = measured_flip_number(traj, eps)
        result.add_row(name, measured, bound)
        result.metrics[f"{name}/measured"] = float(measured)
        result.metrics[f"{name}/bound"] = float(bound)
    result.add_note(f"eps={eps}; every measured value must be <= its bound")
    return result


def e_crypto_space(scale: Scale) -> ExperimentResult:
    """Theorem 10.1: crypto robustness is a key, not a factor."""
    spaces = {
        "static KMV (non-robust)": KMVSketch.for_accuracy(
            scale.eps, 0.05,
            np.random.default_rng(scale.seed)).space_bits(),
        "crypto robust (T10.1)": CryptoRobustDistinctElements(
            n=scale.n, eps=scale.eps,
            rng=np.random.default_rng(scale.seed + 1)).space_bits(),
        "switching robust (T5.1)": RobustDistinctElements(
            n=scale.n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(scale.seed + 2)).space_bits(),
    }
    result = ExperimentResult(
        "E.Crypto", "Theorem 10.1 — space of robust distinct elements",
        ["algorithm", "space", "vs static"],
    )
    static = spaces["static KMV (non-robust)"]
    for name, bits in spaces.items():
        result.add_row(name, space_kib(bits), f"{bits / static:.2f}x")
        result.metrics[f"{name}/bits"] = float(bits)
    result.add_note("crypto route: robustness for one PRP key; generic "
                    "wrapper: a poly(1/eps, log) multiplicative factor")
    return result


def e_framework_crossover(scale: Scale) -> ExperimentResult:
    """Section 1.1: switching vs computation paths as delta shrinks."""
    lam = monotone_flip_number_bound(scale.eps / 2, 1.0, float(scale.n))
    result = ExperimentResult(
        "E.Switch", "Framework ablation — failure-budget crossover",
        ["target delta", "switching budget (bits)", "paths budget (bits)"],
    )
    for log10_delta in (1, 4, 16, 64):
        delta = 10.0 ** (-log10_delta)
        switching = lam * math.log2(lam / delta)
        paths = -required_log2_delta0(delta, scale.m, lam, scale.eps,
                                      float(scale.n))
        result.add_row(f"1e-{log10_delta}", f"{switching:.0f}", f"{paths:.0f}")
        result.metrics[f"1e-{log10_delta}/switching"] = switching
        result.metrics[f"1e-{log10_delta}/paths"] = paths
    result.add_note(
        f"lambda={lam} (eps={scale.eps}, n={scale.n}); switching buys "
        "lambda copies at delta/lambda each, paths one copy at delta_0 — "
        "paths' budget is nearly flat in delta, switching's grows with "
        "lambda log(1/delta): the incomparability of Section 1.1"
    )
    return result


def e_framework_runoff(scale: Scale) -> ExperimentResult:
    """Head-to-head: the two robust F0 implementations, same stream."""
    updates = [Update(i % scale.n, 1) for i in range(scale.m)]
    result = ExperimentResult(
        "E.Switch.runoff", "Framework ablation — robust F0 run-off",
        ["framework", "space", "worst err", "sec"],
    )
    for name, algo in [
        ("switching (T5.1)", RobustDistinctElements(
            n=scale.n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(scale.seed))),
        ("comp-paths (T5.4)", FastRobustDistinctElements(
            n=scale.n, m=scale.m, eps=scale.eps,
            rng=np.random.default_rng(scale.seed + 1))),
    ]:
        stats = run_relative(algo, updates, lambda f: f.f0(), skip=150)
        result.add_row(name, space_kib(stats.space_bits), stats.worst_error,
                       f"{stats.seconds:.1f}")
        result.metrics[f"{name}/worst"] = stats.worst_error
        result.metrics[f"{name}/bits"] = float(stats.space_bits)
    return result


def e_engine_bands(scale: Scale) -> ExperimentResult:
    """Band-policy engine check: every policy, engine vs direct, same bits.

    One stream per policy — multiplicative (robust F0), additive (robust
    entropy), epoch (robust heavy hitters) — replayed twice: the direct
    chunked path and a SerialEngine session.  Asserting identical
    published outputs is the point: after the band-policy refactor all
    three run the same switching protocol, so the engine is available to
    every robustness scheme, not just the multiplicative one.
    """
    from repro.api import ingest, robust_estimator
    from repro.engine import SerialEngine

    rng = np.random.default_rng(scale.seed)
    items = rng.integers(0, scale.n, size=scale.m)
    chunk = max(256, scale.m // 8)
    result = ExperimentResult(
        "E.Engine", "Band-policy engine equivalence (serial engine)",
        ["policy", "problem", "direct out", "engine out", "identical"],
    )
    cases = [
        ("distinct", dict()),
        ("entropy", dict(copies=32)),
        ("heavy-hitters", dict()),
    ]
    for problem, kwargs in cases:
        direct = robust_estimator(problem, n=scale.n, m=scale.m,
                                  eps=scale.eps, seed=scale.seed, **kwargs)
        engined = robust_estimator(problem, n=scale.n, m=scale.m,
                                   eps=scale.eps, seed=scale.seed, **kwargs)
        r0 = ingest(direct, items, chunk_size=chunk)
        r1 = ingest(engined, items, chunk_size=chunk, engine=SerialEngine())
        same = r0.final_estimate == r1.final_estimate
        result.add_row(r1.policy, problem, r0.final_estimate,
                       r1.final_estimate, str(same))
        result.metrics[f"{problem}/identical"] = float(same)
        if not same:  # pragma: no cover - equivalence regression
            result.add_note(f"DIVERGED on {problem}: {r0} vs {r1}")
    result.add_note(
        f"m={scale.m}, n={scale.n}, chunk={chunk}; engine sessions replay "
        "the identical switching protocol (core/bands.py policies), so "
        "outputs match bit for bit on every policy"
    )
    return result


def e_dp_discipline(scale: Scale) -> ExperimentResult:
    """DP aggregate publishing: attack survival + the copy-count contrast.

    Two claims from Hassidim et al. 2020, run through the repo's own
    machinery (the private-aggregate probe discipline on the shared
    switching protocol, not a separate loop):

    1. the Algorithm 3 adversary that collapses a plain AMS sketch does
       not fool the DP F2 tracker — the attack runs unchanged, per item,
       against published noisy-median aggregates;
    2. the DP tracker provisions O(sqrt(lambda)) live copies where plain
       Algorithm 1 switching provisions Theta(lambda), at comparable
       accuracy (the space ratio bench_dp.py gates in CI).
    """
    from repro.robust.dp import RobustDPF2

    algo = RobustDPF2(
        n=8192, m=3000, eps=0.4, rng=np.random.default_rng(scale.seed),
        copies=12, stable_constant=3.0,
    )
    fooled, steps, transcript = run_ams_attack(
        algo, np.random.default_rng(scale.seed + 1), max_updates=1000, t=64
    )
    worst = max(abs(e - g) / g for e, g in transcript if g > 0)
    result = ExperimentResult(
        "E.DP", "DP private-aggregate tracker under Algorithm 3",
        ["metric", "value"],
    )
    result.add_row("adversarial updates survived", steps)
    result.add_row("fooled (est < F2/2)", str(fooled))
    result.add_row("worst relative error", worst)
    result.add_row("live copies (DP, sqrt(lambda))", algo.copies)
    result.add_row("live copies (plain switching, lambda)",
                   algo.paper_copies_plain)
    result.add_row("publications / switch budget",
                   f"{algo.budget_state()['publications']}"
                   f"/{algo.budget_state()['switch_budget']}")
    result.metrics["fooled"] = float(fooled)
    result.metrics["worst"] = worst
    result.metrics["copies_dp"] = float(algo.copies)
    result.metrics["copies_plain"] = float(algo.paper_copies_plain)
    result.add_note(
        "band eps=0.4; same adversary that breaks plain AMS; no copy is "
        "burned on a switch -- Laplace noise over the all-copy median "
        "hides each copy's randomness (sparse-vector budget accounting)"
    )
    return result


def e_dpde_ladder(scale: Scale) -> ExperimentResult:
    """Difference-estimator ladder (Attias et al. 2022) under Algorithm 3.

    The ISSUE 5 claims, run through the repo's machinery (the
    difference-ladder probe discipline over heterogeneous copy groups on
    the shared switching protocol):

    1. the Algorithm 3 adversary is survived exactly as by the plain DP
       tracker — the attack only ever sees published aggregates, most of
       which are answered by the cheap difference tiers;
    2. those tier answers charge their own budgets, so the strong
       sparse-vector budget is spent per *checkpoint*: strictly fewer
       strong charges than publications (the plain DP discipline pays
       one charge per publication by construction).
    """
    from repro.robust.dp import RobustDPDEF2

    algo = RobustDPDEF2(
        n=8192, m=3000, eps=0.4, rng=np.random.default_rng(scale.seed),
        strong_copies=12, stable_constant=3.0,
    )
    fooled, steps, transcript = run_ams_attack(
        algo, np.random.default_rng(scale.seed + 1), max_updates=1000, t=64
    )
    worst = max(abs(e - g) / g for e, g in transcript if g > 0)
    state = algo.budget_state()
    result = ExperimentResult(
        "E.DPDE", "DP difference-estimator ladder under Algorithm 3",
        ["metric", "value"],
    )
    result.add_row("adversarial updates survived", steps)
    result.add_row("fooled (est < F2/2)", str(fooled))
    result.add_row("worst relative error", worst)
    result.add_row("publications (total)", state["publications"])
    result.add_row("strong budget charges", state["strong_charges"])
    result.add_row("publications / strong charge",
                   state["publications_per_charge"])
    result.add_row("checkpoint windows", state["checkpoints"])
    result.add_row("tier publications", str(state["tier_publications"]))
    result.metrics["fooled"] = float(fooled)
    result.metrics["worst"] = worst
    result.metrics["publications"] = float(state["publications"])
    result.metrics["strong_charges"] = float(state["strong_charges"])
    result.metrics["publications_per_charge"] = float(
        state["publications_per_charge"]
    )
    assert state["strong_charges"] < state["publications"], (
        "every publication hit the strong group; the ladder answered none"
    )
    result.add_note(
        "same adversary and band as E.DP; most publications are answered "
        "by the difference tiers (checkpoint + noisy difference), so the "
        "strong sparse-vector budget is charged only at checkpoints -- "
        "fewer budget charges for the same survival"
    )
    return result
