"""Command-line reproduction driver.

Usage::

    python -m repro list
    python -m repro run T1.F0 [--scale quick|full] [--out DIR]
    python -m repro run-all  [--scale quick|full] [--out DIR]

``run-all --scale full`` regenerates every number in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.registry import list_experiments, run, run_all


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and theorem experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument("--scale", default="quick", choices=("quick", "full"))
    run_p.add_argument("--out", default=None, help="directory for .txt output")

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--scale", default="quick", choices=("quick", "full"))
    all_p.add_argument("--out", default=None, help="directory for .txt output")
    return parser


def _write(result, out_dir: str | None) -> None:
    text = result.render()
    print(text)
    if out_dir:
        path = pathlib.Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        fname = result.experiment_id.replace(".", "_").lower() + ".txt"
        (path / fname).write_text(text)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for eid in list_experiments():
            print(eid)
        return 0
    if args.command == "run":
        start = time.perf_counter()
        result = run(args.experiment, args.scale)
        _write(result, args.out)
        print(f"({time.perf_counter() - start:.1f}s)")
        return 0
    if args.command == "run-all":
        start = time.perf_counter()
        for result in run_all(args.scale):
            _write(result, args.out)
        print(f"total: {time.perf_counter() - start:.1f}s")
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
