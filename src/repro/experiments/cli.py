"""Command-line reproduction driver.

Usage::

    python -m repro list
    python -m repro run T1.F0 [--scale quick|full] [--out DIR]
    python -m repro run-all  [--scale quick|full] [--out DIR]
    python -m repro trace TRACE.jsonl [--limit N]

``run-all --scale full`` regenerates every number in EXPERIMENTS.md.
``trace`` summarizes a JSONL telemetry trace (written via
``ingest(telemetry="jsonl:PATH")`` or a :class:`repro.obs.JsonlSink`):
switch timeline, sparse-vector budget burn-down, and a per-phase span
table.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.registry import list_experiments, run, run_all


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and theorem experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument("--scale", default="quick", choices=("quick", "full"))
    run_p.add_argument("--out", default=None, help="directory for .txt output")

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--scale", default="quick", choices=("quick", "full"))
    all_p.add_argument("--out", default=None, help="directory for .txt output")

    trace_p = sub.add_parser("trace", help="summarize a JSONL telemetry trace")
    trace_p.add_argument("trace", help="path to a .jsonl trace file")
    trace_p.add_argument("--limit", type=int, default=20,
                         help="max rows per section (default 20)")
    return parser


def _write(result, out_dir: str | None) -> None:
    text = result.render()
    print(text)
    if out_dir:
        path = pathlib.Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        fname = result.experiment_id.replace(".", "_").lower() + ".txt"
        (path / fname).write_text(text)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for eid in list_experiments():
            print(eid)
        return 0
    if args.command == "run":
        start = time.perf_counter()
        result = run(args.experiment, args.scale)
        _write(result, args.out)
        print(f"({time.perf_counter() - start:.1f}s)")
        return 0
    if args.command == "run-all":
        start = time.perf_counter()
        for result in run_all(args.scale):
            _write(result, args.out)
        print(f"total: {time.perf_counter() - start:.1f}s")
        return 0
    if args.command == "trace":
        # Local import: the obs package is stdlib-only, but keep the
        # list/run paths free of it anyway.
        from repro.obs.trace_cli import summarize_trace

        try:
            print(summarize_trace(args.trace, limit=args.limit))
        except OSError as exc:
            print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
            return 1
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
