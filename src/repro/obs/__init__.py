"""Observability: metrics registry, structured protocol tracing, spans.

Quick start::

    from repro import ingest, obs

    tele = obs.Telemetry(sinks=[obs.RingSink()])
    report = ingest("distinct", stream, n=..., m=..., telemetry=tele)
    print(tele.expose())                  # Prometheus-style metrics
    switches = tele.sinks[0].by_kind("switch")

or simply ``ingest(..., telemetry="jsonl:run.jsonl")`` and then
``python -m repro trace run.jsonl``.

The package is dependency-free (stdlib only) and is imported by
``repro.core``; nothing here may import ``repro.core`` or
``repro.engine``.
"""

from repro.obs.events import (
    EVENT_TYPES,
    BandTestEvent,
    CopyBurnEvent,
    CopyRetireEvent,
    GenerationEvent,
    LadderAnchorEvent,
    LadderInvalidateEvent,
    LadderPromoteEvent,
    MaterializeFaultEvent,
    PhasesEvent,
    PlannerFallbackEvent,
    PrefetchFaultEvent,
    RingAdvanceEvent,
    SpanEvent,
    SpecBroadcastEvent,
    SvtChargeEvent,
    SwitchEvent,
    TraceEvent,
    event_from_dict,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import CallbackSink, JsonlSink, RingSink, read_trace
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    WorkerTelemetry,
    resolve_telemetry,
)
from repro.obs.trace_cli import summarize_events, summarize_trace

__all__ = [
    # bundle
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "WorkerTelemetry",
    "resolve_telemetry",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    # events
    "TraceEvent", "SwitchEvent", "BandTestEvent", "CopyBurnEvent",
    "RingAdvanceEvent", "CopyRetireEvent", "GenerationEvent",
    "SvtChargeEvent", "LadderAnchorEvent", "LadderPromoteEvent",
    "LadderInvalidateEvent", "PlannerFallbackEvent", "PrefetchFaultEvent",
    "SpecBroadcastEvent", "MaterializeFaultEvent",
    "SpanEvent", "PhasesEvent", "EVENT_TYPES", "event_from_dict",
    # sinks
    "RingSink", "JsonlSink", "CallbackSink", "read_trace",
    # trace summarizer
    "summarize_trace", "summarize_events",
]
