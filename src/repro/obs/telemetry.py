"""The :class:`Telemetry` bundle: registry + sinks + spans, and its no-op twin.

One ``Telemetry`` object travels with an estimator (installed on its
:class:`~repro.core.copies.CopyManager`, which every protocol seam can
reach) and collects three things:

* **metrics** — a :class:`~repro.obs.metrics.MetricsRegistry`;
* **events** — typed records fanned out to the configured sinks;
* **spans** — nested timing scopes (``ingest`` → ``chunk`` →
  ``worker-chunk``) with parent/child linkage that survives the
  ProcessEngine fork boundary: workers buffer span/event records
  locally (:class:`WorkerTelemetry`) and the coordinator folds them in
  with :meth:`Telemetry.absorb_worker` at collect time.

The disabled default is :data:`NULL_TELEMETRY`: ``enabled`` is False,
``emit`` is a no-op, ``span()`` returns a shared do-nothing context
manager, and ``metrics`` is the null registry — so instrumented code
costs one attribute test on the paths that matter.

Everything here is observation-only by construction: no RNG is drawn
and no protocol state is touched, which is what makes the tracing
on/off bit-for-bit equivalence guarantee hold.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.events import SpanEvent, TraceEvent, event_from_dict
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import CallbackSink, JsonlSink, RingSink

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "WorkerTelemetry",
    "resolve_telemetry",
]


class _Span:
    """Reusable span context manager; emits a SpanEvent on exit."""

    __slots__ = ("_tele", "name", "id", "parent", "_start")

    def __init__(self, tele: "Telemetry", name: str,
                 parent: Optional[Union[int, str]]) -> None:
        self._tele = tele
        self.name = name
        self.id = tele._next_span_id()
        self.parent = parent
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.time()
        self._tele._push_span(self.id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tele._pop_span(self.id)
        self._tele.emit(SpanEvent(
            span=self.parent,
            id=self.id,
            name=self.name,
            start=self._start,
            end=time.time(),
        ))


class _NullSpan:
    """Shared no-op context manager for disabled telemetry."""

    __slots__ = ()
    id = None
    parent = None
    name = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Enabled telemetry: metrics registry, event sinks, span stack.

    ``emit`` is serialized under a lock because the prefetcher's
    producer thread can report faults concurrently with the ingest
    loop; everything else is coordinator-thread only.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 sinks: Iterable[Any] = ()) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sinks = list(sinks)
        self.event_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._span_serial = 0
        self._span_stack: List[Union[int, str]] = []

    # -- events ---------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        if event.t == 0.0:
            event.t = time.time()
        if event.span is None:
            event.span = self.current_span_id
        with self._lock:
            self.event_counts[event.kind] = (
                self.event_counts.get(event.kind, 0) + 1
            )
            for sink in self.sinks:
                sink.emit(event)

    # -- spans ----------------------------------------------------------

    def _next_span_id(self) -> int:
        self._span_serial += 1
        return self._span_serial

    def _push_span(self, span_id: Union[int, str]) -> None:
        self._span_stack.append(span_id)

    def _pop_span(self, span_id: Union[int, str]) -> None:
        if self._span_stack and self._span_stack[-1] == span_id:
            self._span_stack.pop()

    @property
    def current_span_id(self) -> Optional[Union[int, str]]:
        return self._span_stack[-1] if self._span_stack else None

    def span(self, name: str,
             parent: Optional[Union[int, str]] = None) -> _Span:
        """Open a nested timing scope: ``with tele.span("chunk"): ...``"""
        return _Span(self, name,
                     parent if parent is not None else self.current_span_id)

    # -- cross-worker merge ---------------------------------------------

    def absorb_worker(self, worker: int, payload: Dict[str, Any]) -> None:
        """Fold one worker's buffered telemetry into this bundle.

        ``payload`` is a :meth:`WorkerTelemetry.drain` dict shipped
        over the result pipe: serialized events (worker spans included)
        and a metrics snapshot.  Worker span records carry the
        coordinator-side parent span id they were tagged with, so the
        merged trace keeps ``chunk → worker-chunk`` linkage.
        """
        for record in payload.get("events", ()):
            event = event_from_dict(record)
            event.worker = worker
            if isinstance(event, SpanEvent) and event.id is None:
                event.id = f"w{worker}:{self._next_span_id()}"
            self.emit(event)
        snap = payload.get("metrics")
        if snap:
            self.metrics.merge_snapshot(snap)

    # -- lifecycle / exposition -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Merged summary for ``IngestReport.telemetry``."""
        return {
            "metrics": self.metrics.snapshot(),
            "events": dict(self.event_counts),
            "spans": self._span_serial,
        }

    def expose(self) -> str:
        """Prometheus-style text dump of the metrics registry."""
        return self.metrics.expose()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullTelemetry:
    """Disabled telemetry: every operation is a near-free no-op."""

    enabled = False
    metrics = NULL_REGISTRY
    sinks: tuple = ()
    event_counts: Dict[str, int] = {}
    current_span_id = None

    def emit(self, event: TraceEvent) -> None:
        pass

    def span(self, name: str, parent=None) -> _NullSpan:
        return _NULL_SPAN

    def absorb_worker(self, worker: int, payload: Dict[str, Any]) -> None:
        pass

    def snapshot(self) -> None:
        return None

    def expose(self) -> str:
        return ""

    def close(self) -> None:
        pass


#: The process-wide disabled default installed on every CopyManager.
NULL_TELEMETRY = NullTelemetry()


class WorkerTelemetry:
    """Worker-side buffer: phase timings + event records, shipped on drain.

    Lives inside a forked ProcessEngine worker.  Phase timings are
    *always* accumulated (two ``perf_counter`` calls per backend
    command — noise next to the sketch work) because
    ``IngestReport.phase_seconds`` wants them even with tracing off;
    span/event buffering only happens when the coordinator enabled
    tracing.  The coordinator tags each staged chunk with its span id
    via a ``("span", id)`` pipe command; ops observed between two tags
    become one ``worker-chunk`` span parented under that chunk.
    """

    #: Map backend command -> phase bucket.  Probe-shaped commands
    #: (aggregate probes, snapshot scans) all count as "probe";
    #: spec-shipped chunk materialization ("adv") is its own "generate"
    #: phase so worker-side generation time stays attributable.
    PHASE_OF = {
        "probe": "probe", "akeep": "probe", "aroll": "probe",
        "asnap": "probe", "afeed": "probe", "astep": "probe",
        "ascan": "probe",
        "feed": "feed",
        "replace": "replace",
        "adv": "generate",
    }

    def __init__(self, worker: int, trace: bool) -> None:
        self.worker = worker
        self.trace = trace
        self.phases: Dict[str, float] = {
            "probe": 0.0, "feed": 0.0, "replace": 0.0, "generate": 0.0,
        }
        self.events: List[Dict[str, Any]] = []
        self._span: Optional[Union[int, str]] = None
        self._span_start: Optional[float] = None
        self._span_end = 0.0
        self._ops = 0

    def op(self, command: str, seconds: float) -> None:
        """Record one timed backend command."""
        phase = self.PHASE_OF.get(command)
        if phase is not None:
            self.phases[phase] += seconds
        if self.trace and self._span is not None:
            now = time.time()
            if self._span_start is None:
                self._span_start = now - seconds
            self._span_end = now
            self._ops += 1

    def begin_span(self, span_id: Optional[Union[int, str]]) -> None:
        """Coordinator staged a new chunk under ``span_id``."""
        self._close_span()
        self._span = span_id
        self._span_start = None
        self._ops = 0

    def _close_span(self) -> None:
        if self.trace and self._span is not None and self._span_start is not None:
            self.events.append({
                "kind": "span",
                "span": self._span,       # parent: coordinator chunk span
                "name": "worker-chunk",
                "start": self._span_start,
                "end": self._span_end,
                "t": self._span_end,
                "ops": self._ops,
            })
        self._span = None
        self._span_start = None

    def drain(self) -> Dict[str, Any]:
        """Close the open span and hand everything to the coordinator."""
        self._close_span()
        payload: Dict[str, Any] = {"phases": dict(self.phases)}
        if self.events:
            payload["events"] = self.events
            self.events = []
        return payload


def resolve_telemetry(spec: Any) -> Optional[Telemetry]:
    """Resolve the ``telemetry=`` argument accepted by ``api.ingest``.

    ``None``/``False``
        Telemetry stays disabled (returns ``None``).
    a :class:`Telemetry` instance
        Used as-is (caller owns sinks and ``close()``).
    ``"metrics"``
        Metrics registry only, no event sinks.
    ``"ring"`` / ``True``
        Full tracing into an in-memory :class:`RingSink`.
    ``"jsonl:PATH"`` or a path ending in ``.jsonl``
        Full tracing appended to a JSONL file at ``PATH``.
    a callable
        Full tracing through a :class:`CallbackSink`.
    """
    if spec is None or spec is False:
        return None
    if isinstance(spec, Telemetry):
        return spec
    if spec is True:
        return Telemetry(sinks=[RingSink()])
    if callable(spec):
        return Telemetry(sinks=[CallbackSink(spec)])
    if isinstance(spec, str):
        if spec == "metrics":
            return Telemetry()
        if spec == "ring":
            return Telemetry(sinks=[RingSink()])
        if spec.startswith("jsonl:"):
            return Telemetry(sinks=[JsonlSink(spec[len("jsonl:"):])])
        if spec.endswith(".jsonl"):
            return Telemetry(sinks=[JsonlSink(spec)])
        raise ValueError(
            f"unknown telemetry spec {spec!r}: expected 'metrics', 'ring', "
            "'jsonl:PATH', a '*.jsonl' path, a callable, or a Telemetry"
        )
    raise TypeError(f"cannot build telemetry from {type(spec).__name__}")
