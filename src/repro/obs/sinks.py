"""Pluggable event sinks: in-memory ring, JSONL file, callback.

A sink receives every emitted :class:`~repro.obs.events.TraceEvent`
via ``emit(event)`` and may hold resources until ``close()``.  Sinks
must tolerate emits from the prefetcher's producer thread; the
:class:`~repro.obs.Telemetry` bundle serializes emits under a lock, so
sinks themselves can stay lock-free.
"""

from __future__ import annotations

import io
import json
import os
from collections import deque
from typing import Callable, Iterable, List, Optional, Union

from repro.obs.events import TraceEvent, event_from_dict

__all__ = ["RingSink", "JsonlSink", "CallbackSink", "read_trace"]


class RingSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("RingSink capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0        # how many fell off the front

    def emit(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def close(self) -> None:
        pass


class JsonlSink:
    """Append events as JSON lines; flushed per event (traces are sparse)."""

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[io.TextIOWrapper] = open(
            self.path, "w", encoding="utf-8"
        )

    def emit(self, event: TraceEvent) -> None:
        fh = self._fh
        if fh is None:
            return
        fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class CallbackSink:
    """Hand every event to a user function (testing, live dashboards)."""

    def __init__(self, fn: Callable[[TraceEvent], None]) -> None:
        self._fn = fn

    def emit(self, event: TraceEvent) -> None:
        self._fn(event)

    def close(self) -> None:
        pass


def read_trace(path: Union[str, "os.PathLike[str]"]) -> List[TraceEvent]:
    """Load a JSONL trace back into typed events (skips blank lines)."""
    events: List[TraceEvent] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events
