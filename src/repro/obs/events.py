"""Typed trace events for the switching protocol.

Every dynamic decision the framework makes — a copy switch, a band
test, an SVT budget charge, a ladder promotion — is modelled as a
small mutable dataclass with a ``kind`` tag.  Events serialize to
plain dicts (``to_dict``) for the JSONL sink and the worker→coordinator
pipe, and round-trip back with :func:`event_from_dict` so the ``repro
trace`` summarizer and tests can work on typed records again.

Common fields (filled by :meth:`repro.obs.Telemetry.emit` when left at
their defaults):

``t``
    Wall-clock timestamp (``time.time()``).
``span``
    Id of the enclosing span (the per-chunk span during ingest), or
    ``None`` outside any span.
``worker``
    ProcessEngine worker index the event originated from; ``None``
    means the coordinator process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Type, Union

__all__ = [
    "TraceEvent",
    "SwitchEvent",
    "BandTestEvent",
    "CopyBurnEvent",
    "RingAdvanceEvent",
    "CopyRetireEvent",
    "GenerationEvent",
    "SvtChargeEvent",
    "LadderAnchorEvent",
    "LadderPromoteEvent",
    "LadderInvalidateEvent",
    "PlannerFallbackEvent",
    "PrefetchFaultEvent",
    "SpecBroadcastEvent",
    "MaterializeFaultEvent",
    "SpanEvent",
    "PhasesEvent",
    "event_from_dict",
    "EVENT_TYPES",
]


@dataclass
class TraceEvent:
    """Base record; concrete events add their payload fields."""

    kind: ClassVar[str] = "event"

    t: float = 0.0
    span: Optional[Union[int, str]] = None
    worker: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["kind"] = self.kind
        return d


@dataclass
class SwitchEvent(TraceEvent):
    """A publication: the protocol switched to a fresh copy's estimate."""

    kind: ClassVar[str] = "switch"

    published: float = 0.0
    estimate: float = 0.0       # raw aggregate the discipline decided on
    switches: int = 0           # cumulative count after this switch
    discipline: str = ""
    band: str = ""
    position: Optional[int] = None  # offset within the chunk (chunked path)


@dataclass
class BandTestEvent(TraceEvent):
    """Chunk-boundary band test: did the estimate stay in-band?"""

    kind: ClassVar[str] = "band-test"

    clean: bool = True
    published: float = 0.0
    estimate: float = 0.0


@dataclass
class CopyBurnEvent(TraceEvent):
    """Plain burn-and-advance: the active copy moved forward."""

    kind: ClassVar[str] = "copy-burn"

    index: int = 0              # copy index that was burned


@dataclass
class RingAdvanceEvent(TraceEvent):
    """Theorem 4.1 restart ring advanced: slot burned, rho bumped."""

    kind: ClassVar[str] = "ring-advance"

    slot: int = 0
    rho: int = 0


@dataclass
class CopyRetireEvent(TraceEvent):
    """A copy left the live set (generation refresh, tier refresh...)."""

    kind: ClassVar[str] = "copy-retire"

    index: int = 0


@dataclass
class GenerationEvent(TraceEvent):
    """DP discipline exhausted its SVT budget and rotated a generation."""

    kind: ClassVar[str] = "generation-retire"

    generation: int = 0
    copies: int = 0             # copies refreshed in the rotation


@dataclass
class SvtChargeEvent(TraceEvent):
    """A sparse-vector budget charge (DP publication or ladder strong)."""

    kind: ClassVar[str] = "svt-charge"

    charges: int = 0            # spent so far in the current window
    budget: int = 0             # window size (0 = unbounded)
    spent: float = 0.0          # charges / budget, 0 when unbounded
    scope: str = "publication"  # "publication" | "strong"


@dataclass
class LadderAnchorEvent(TraceEvent):
    """Difference ladder re-anchored on a fresh strong checkpoint."""

    kind: ClassVar[str] = "ladder-anchor"

    checkpoint: float = 0.0
    checkpoints: int = 0        # cumulative anchor count


@dataclass
class LadderPromoteEvent(TraceEvent):
    """Ladder tier handed off to the next tier (or back to strong)."""

    kind: ClassVar[str] = "ladder-promote"

    from_level: Union[int, str] = 0
    to_level: Union[int, str] = "strong"
    reason: str = ""            # "span" | "capacity" | "budget"


@dataclass
class LadderInvalidateEvent(TraceEvent):
    """Ladder dropped its anchor (estimate left the strong band)."""

    kind: ClassVar[str] = "ladder-invalidate"

    checkpoint: float = 0.0


@dataclass
class PlannerFallbackEvent(TraceEvent):
    """Shard planner fell back to the serial path."""

    kind: ClassVar[str] = "planner-fallback"

    reason: str = ""


@dataclass
class PrefetchFaultEvent(TraceEvent):
    """Prefetcher lifecycle fault (producer crash, join timeout)."""

    kind: ClassVar[str] = "prefetch-fault"

    fault: str = ""             # "producer-exception" | "join-timeout" | ...
    detail: str = ""


@dataclass
class SpecBroadcastEvent(TraceEvent):
    """A chunk-source spec was broadcast to the process-engine workers.

    One per spec-shipped session: after this the coordinator sends only
    advance commands per chunk and the workers materialize locally.
    """

    kind: ClassVar[str] = "spec-broadcast"

    source: str = ""            # spec kind: "generator" | "store"
    chunks: int = 0
    updates: int = 0
    workers: int = 0


@dataclass
class MaterializeFaultEvent(TraceEvent):
    """A worker failed while materializing chunks from a broadcast spec."""

    kind: ClassVar[str] = "materialize-fault"

    detail: str = ""


@dataclass
class SpanEvent(TraceEvent):
    """A completed span.  ``span`` is the *parent*; ``id`` is its own."""

    kind: ClassVar[str] = "span"

    id: Optional[Union[int, str]] = None
    name: str = ""
    start: float = 0.0
    end: float = 0.0
    ops: int = 0                # backend ops folded in (worker spans)

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass
class PhasesEvent(TraceEvent):
    """Final per-phase wall-clock totals for a session (seconds)."""

    kind: ClassVar[str] = "phases"

    phases: Dict[str, float] = field(default_factory=dict)


EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        SwitchEvent, BandTestEvent, CopyBurnEvent, RingAdvanceEvent,
        CopyRetireEvent, GenerationEvent, SvtChargeEvent,
        LadderAnchorEvent, LadderPromoteEvent, LadderInvalidateEvent,
        PlannerFallbackEvent, PrefetchFaultEvent, SpecBroadcastEvent,
        MaterializeFaultEvent, SpanEvent, PhasesEvent,
    )
}


def event_from_dict(payload: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from a ``to_dict()`` / JSONL record.

    Unknown kinds degrade to a bare :class:`TraceEvent` rather than
    raising, so newer traces stay readable by older summarizers.
    """
    data = dict(payload)
    kind = data.pop("kind", "event")
    cls = EVENT_TYPES.get(kind, TraceEvent)
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in names})
