"""``repro trace`` — summarize a JSONL telemetry trace.

Renders four sections from a trace written by a
:class:`~repro.obs.sinks.JsonlSink`:

* header: event counts by kind and the covered time window;
* switch timeline: every publication with its relative timestamp;
* budget burn-down: SVT charges as spent-fraction over time;
* per-phase table: span tree (``ingest`` → ``chunk`` →
  ``worker-chunk``) aggregated flamegraph-style, plus the session's
  final phase totals when a ``phases`` event is present.
"""

from __future__ import annotations

import os
from collections import Counter as _Counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.events import (
    PhasesEvent,
    SpanEvent,
    SvtChargeEvent,
    SwitchEvent,
    TraceEvent,
)
from repro.obs.sinks import read_trace

__all__ = ["summarize_trace", "summarize_events"]


def summarize_trace(path: Union[str, "os.PathLike[str]"],
                    limit: int = 20) -> str:
    """Read a JSONL trace file and return the text summary."""
    return summarize_events(read_trace(path), limit=limit,
                            title=os.fspath(path))


def summarize_events(events: Sequence[TraceEvent], limit: int = 20,
                     title: str = "trace") -> str:
    lines: List[str] = []
    t0 = min((e.t for e in events if e.t), default=0.0)

    counts = _Counter(e.kind for e in events)
    lines.append(f"trace: {title}")
    lines.append(f"events: {len(events)}")
    for kind in sorted(counts):
        lines.append(f"  {kind:<18} {counts[kind]}")
    if events:
        t_max = max((e.t for e in events), default=t0)
        lines.append(f"window: {t_max - t0:.3f}s")

    lines.extend(_switch_timeline(events, t0, limit))
    lines.extend(_budget_burndown(events, t0, limit))
    lines.extend(_phase_table(events))
    return "\n".join(lines) + "\n"


def _clip(rows: List[str], limit: int, what: str) -> List[str]:
    if limit and len(rows) > limit:
        hidden = len(rows) - limit
        rows = rows[:limit] + [f"  ... {hidden} more {what} (use --limit)"]
    return rows


def _switch_timeline(events: Sequence[TraceEvent], t0: float,
                     limit: int) -> List[str]:
    switches = [e for e in events if isinstance(e, SwitchEvent)]
    if not switches:
        return ["", "switch timeline: (no switch events)"]
    rows = []
    for e in switches:
        where = f" worker={e.worker}" if e.worker is not None else ""
        pos = f" pos={e.position}" if e.position is not None else ""
        rows.append(
            f"  +{e.t - t0:8.3f}s  #{e.switches:<4d} "
            f"published={e.published:<12.6g} raw={e.estimate:<12.6g}"
            f"{pos}{where}"
        )
    head = [
        "",
        f"switch timeline ({len(switches)} publications, "
        f"{switches[0].discipline or 'active'} / "
        f"{switches[0].band or '?'}):",
    ]
    return head + _clip(rows, limit, "switches")


def _budget_burndown(events: Sequence[TraceEvent], t0: float,
                     limit: int) -> List[str]:
    charges = [e for e in events if isinstance(e, SvtChargeEvent)]
    if not charges:
        return []
    width = 24
    rows = []
    for e in charges:
        if e.budget:
            spent = min(1.0, e.spent)
            bar = "#" * int(round(spent * width))
            gauge = f"[{bar:<{width}}] {spent:6.1%}"
        else:
            gauge = "(unbounded)"
        rows.append(
            f"  +{e.t - t0:8.3f}s  {e.scope:<12} "
            f"{e.charges}/{e.budget or '∞'}  {gauge}"
        )
    return ["", f"budget burn-down ({len(charges)} charges):"] + _clip(
        rows, limit, "charges")


def _phase_table(events: Sequence[TraceEvent]) -> List[str]:
    spans = [e for e in events if isinstance(e, SpanEvent)]
    out: List[str] = []
    if spans:
        # Aggregate by depth in the parent chain, then by name — a
        # flamegraph flattened to one row per (depth, name).
        parent_of = {e.id: e.span for e in spans if e.id is not None}

        def depth(e: SpanEvent) -> int:
            d, seen, cur = 0, set(), e.span
            while cur is not None and cur not in seen:
                seen.add(cur)
                cur = parent_of.get(cur)
                d += 1
            return d

        agg: Dict[Tuple[int, str], List[float]] = {}
        for e in spans:
            agg.setdefault((depth(e), e.name), []).append(e.seconds)
        out += ["", "span phases:",
                f"  {'phase':<24} {'count':>6} {'total s':>10} {'mean ms':>10}"]
        for (d, name), durs in sorted(agg.items()):
            label = "  " * d + name
            total = sum(durs)
            out.append(
                f"  {label:<24} {len(durs):>6} {total:>10.4f} "
                f"{1000.0 * total / len(durs):>10.3f}"
            )
    phase_events = [e for e in events if isinstance(e, PhasesEvent)]
    if phase_events:
        merged: Dict[str, float] = {}
        for e in phase_events:
            for key, sec in (e.phases or {}).items():
                merged[key] = merged.get(key, 0.0) + float(sec)
        out += ["", "session phase totals (s):"]
        for key in sorted(merged):
            out.append(f"  {key:<24} {merged[key]:>10.4f}")
    if not out:
        out = ["", "phases: (no span or phases events)"]
    return out
