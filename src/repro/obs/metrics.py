"""Low-overhead metrics: counters, gauges, histograms, and a registry.

Design constraints, in order:

1. **Disabled telemetry costs ~nothing.**  Every instrument has a
   ``Null*`` twin whose mutators are empty methods; the null registry
   hands those out so instrumented call sites never need an ``if``.
   Hot paths that *do* branch should test ``telemetry.enabled`` once
   and skip the whole block.
2. **Cross-process mergeable.**  ProcessEngine workers accumulate
   metric deltas in their own registry and ship ``snapshot()`` dicts
   back with their result payloads; the coordinator folds them in with
   ``merge_snapshot`` (counters and histogram buckets sum, gauges take
   the most extreme value).
3. **Exposition is text.**  ``expose()`` renders the familiar
   Prometheus format so a scrape endpoint (or a human) can read it.

The registry is get-or-create: ``registry.counter("x")`` returns the
same instrument every time, so call sites do not need to pre-declare
metrics at import time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets — powers of four from 1 to ~1M, a decent
#: spread for "items per chunk" and "events per publication" shapes.
DEFAULT_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0,
                   16384.0, 65536.0, 262144.0, 1048576.0)


class Counter:
    """Monotone counter.  ``inc`` only; never decremented."""

    __slots__ = ("name", "help", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": self._value}

    def merge(self, snap: dict) -> None:
        self._value += snap.get("value", 0.0)


class Gauge:
    """Last-written value (e.g. live copies, current ladder level)."""

    __slots__ = ("name", "help", "_value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": self._value}

    def merge(self, snap: dict) -> None:
        # Cross-worker gauges have no single truth; keep the extreme so
        # "peak live copies" style readings survive the merge.
        other = snap.get("value", 0.0)
        if abs(other) > abs(self._value):
            self._value = other


class Histogram:
    """Cumulative histogram over explicit, sorted bucket bounds."""

    __slots__ = ("name", "help", "buckets", "counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self._sum,
            "count": self._count,
        }

    def merge(self, snap: dict) -> None:
        if tuple(snap.get("buckets", ())) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ, cannot merge"
            )
        for i, c in enumerate(snap.get("counts", ())):
            self.counts[i] += c
        self._sum += snap.get("sum", 0.0)
        self._count += snap.get("count", 0)


class _NullInstrument:
    """Shared no-op twin for every instrument type."""

    __slots__ = ()
    name = "null"
    help = ""
    value = 0.0
    sum = 0.0
    count = 0
    buckets = ()
    counts = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create instrument registry with snapshot/merge/expose."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        inst = self._metrics.get(name)
        if inst is None:
            inst = cls(name, help, **kwargs)
            self._metrics[name] = inst
            return inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """Plain-dict dump of every instrument (picklable, mergeable)."""
        return {name: m.snapshot() for name, m in self._metrics.items()}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker's ``snapshot()`` into this registry."""
        makers = {"counter": self.counter, "gauge": self.gauge}
        for name, entry in snap.items():
            kind = entry.get("kind")
            if kind == "histogram":
                inst = self.histogram(name, buckets=entry["buckets"])
            elif kind in makers:
                inst = makers[kind](name)
            else:
                continue
            inst.merge(entry)

    def expose(self) -> str:
        """Prometheus text exposition of the current state."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Histogram):
                cum = 0
                for bound, c in zip(m.buckets, m.counts):
                    cum += c
                    lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cum}')
                cum += m.counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cum}')
                lines.append(f"{name}_sum {_fmt(m.sum)}")
                lines.append(f"{name}_count {m.count}")
            else:
                lines.append(f"{name} {_fmt(m.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Render 2.0 as "2" but keep real fractions."""
    f = float(value)
    return str(int(f)) if f == int(f) else repr(f)


class NullRegistry(MetricsRegistry):
    """Registry whose instruments are all shared no-ops."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]


NULL_REGISTRY = NullRegistry()
