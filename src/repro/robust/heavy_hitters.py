"""Adversarially robust L2 heavy hitters / point queries (Theorem 6.5).

The construction of Section 6:

1. Run the adversarially robust F2 tracker of Theorem 4.1 (sketch
   switching over p=2 stable sketches).  Its (eps/2)-rounded output
   partitions time into epochs ``t_1 < t_2 < ...`` — by Corollary 3.5
   there are only ``T = Theta(eps^-1 log n)`` of them, and within an epoch
   the L2 norm moves by at most an eps factor, so by Proposition 6.3 a
   point-query vector that was correct at ``t_i`` stays (2 eps)-correct
   until ``t_{i+1}``.

2. Keep a ring of ``T' = Theta(eps^-1 log eps^-1)`` CountSketch copies.
   At each epoch boundary, *publish a frozen snapshot* of the
   least-recently-restarted copy's point estimates, then restart that
   copy.  Between boundaries the published snapshot never changes, so the
   adversary learns nothing about the live copies — the switching argument
   verbatim.

The epoch machinery is not hand-rolled here: the epoch clock is an
:class:`~repro.core.bands.EpochBand` (Definition 3.1 rounding of the
robust L2 estimate — ``crossed``/``publish`` are the band's rules) and
the CountSketch ring is a :class:`~repro.core.copies.CopyManager` in
restart mode, whose burn-and-advance and replacement-RNG derivation are
the same code every switching estimator uses.  That is also what lets
the execution engine drive this wrapper (:class:`repro.engine.shards`
plans it as an :class:`~repro.engine.shards.EpochShardPlan`): the L2
tracker runs through the shared switching protocol, the ring fans out
across workers, and the epoch clock ticks on the coordinator.

``heavy_hitters()`` returns items whose frozen estimate clears
``(3/4) eps R_t`` against the robust L2 estimate ``R_t``, implementing the
Definition 6.1 guarantee; ``point_query`` exposes the Definition 6.2
surface.
"""

from __future__ import annotations

import numpy as np

from repro.core.bands import EpochBand
from repro.core.copies import CopyManager
from repro.core.sketch_switching import restart_ring_size
from repro.robust.moments import RobustFpSwitching
from repro.sketches.base import PointQuerySketch, spawn_rngs
from repro.sketches.countsketch import CountSketch


class RobustHeavyHitters(PointQuerySketch):
    """Theorem 6.5: robust (eps, delta) point queries and L2 heavy hitters.

    Parameters
    ----------
    n, m:
        Universe size and stream length bound.
    eps:
        The point-query accuracy: published estimates satisfy
        ``|f_hat_i - f_i| <= O(eps) |f|_2`` at every step whp.
    copies:
        CountSketch ring size; defaults to the Theorem's
        Theta(eps^-1 log eps^-1).
    candidate_budget:
        How many candidate heavy items each CountSketch copy tracks.
    """

    supports_deletions = False

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        copies: int | None = None,
        l2_copies: int | None = None,
        l2_eps: float = 0.4,
        report_factor: float = 0.7,
        candidate_budget: int = 64,
        cs_width_constant: float = 3.0,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        self.report_factor = report_factor
        # Three spawn slots for seeding stability with earlier revisions
        # (slot 1 previously seeded ad-hoc ring restarts, now owned by
        # the ring CopyManager's fresh-randomness pool).
        rngs = spawn_rngs(rng, 3)
        if copies is None:
            copies = restart_ring_size(eps, constant=1.0)
        # Robust L2 tracker driving the epochs (Theorem 4.1 instance).  Its
        # only consumers are the epoch clock and the reporting threshold,
        # both of which tolerate a coarse (1 +- l2_eps) norm estimate, so it
        # runs at relaxed accuracy — but its restart ring MUST be sized for
        # its own eps (an undersized ring loses prefix mass on every restart
        # and the estimate death-spirals), hence copies=None here unless the
        # caller overrides.
        self._l2 = RobustFpSwitching(
            p=2.0, n=n, m=m, eps=l2_eps, rng=rngs[0], delta=0.5,
            restart=True, track="norm", copies=l2_copies,
            eps0_fraction=0.3, stable_constant=2.0,
        )
        # Epoch clock: Definition 3.1 rounding of the robust L2 estimate.
        # None = no epoch opened yet; the first observation always
        # publishes (EpochBand treats None as an immediate crossing).
        self._epoch_band = EpochBand(eps / 2)
        self._epoch_published: float | None = None
        delta0 = delta / (2 * max(copies, 1))

        def make_cs(child: np.random.Generator) -> CountSketch:
            return CountSketch.for_accuracy(
                eps / 2, delta0, n, child,
                width_constant=cs_width_constant,
            )

        self._ring = CopyManager(make_cs, copies, rngs[2], restart=True)
        self._published: dict[int, float] = {}
        self.epochs = 0

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def update(self, item: int, delta: int = 1) -> None:
        self._l2.update(item, delta)
        for cs in self._ring.sketches:
            cs.update(item, delta)
        self._tick_epoch_clock()

    def update_batch(self, items, deltas=None) -> None:
        """Chunked oblivious ingestion: epoch clock ticks per chunk.

        The L2 tracker and every CountSketch copy consume the chunk
        vectorized; the epoch band observes the robust estimate once
        per chunk boundary, so epochs that open and close inside a chunk
        are coalesced — within an epoch the published snapshot is frozen
        anyway, so oblivious replay only loses intermediate snapshots, not
        the guarantee.  The adversarial game runs per item as always.
        """
        self._l2.update_batch(items, deltas)
        for cs in self._ring.sketches:
            cs.update_batch(items, deltas)
        self._tick_epoch_clock()

    def _tick_epoch_clock(self, fetch=None, replace=None) -> None:
        """One Definition 3.1 observation of the robust L2 estimate.

        On an epoch boundary: freeze the least-recently-restarted copy's
        point estimates as the published vector, then restart that copy.
        This is the *only* implementation of the epoch discipline; the
        engine's epoch session calls it with its backend's ``fetch`` /
        ``replace`` hooks so the snapshot is read from (and the
        replacement installed into) whichever process owns the copy.
        """
        r_t = self._l2.query()
        if self._epoch_band.crossed(self._epoch_published, r_t):
            self._epoch_published = self._epoch_band.publish(r_t)
            slot = self._ring.active_index
            cs = self._ring.sketches[slot] if fetch is None else fetch(slot)
            self._publish_snapshot(cs)
            self._ring.advance(self.epochs, replace=replace)
            self.epochs += 1

    def _publish_snapshot(self, cs: CountSketch) -> None:
        """Freeze one copy's point estimates as the published vector."""
        self._published = {
            i: cs.point_query(i) for i in cs.heavy_hitters(0.0)
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def point_query(self, item: int) -> float:
        """Published (frozen) estimate of f_item; 0 for untracked items."""
        return self._published.get(item, 0.0)

    def l2_estimate(self) -> float:
        """The robust (1 ± eps/2) estimate of |f|_2."""
        return self._l2.query()

    def heavy_hitters(self) -> set[int]:
        """Items i with published estimate >= report_factor * eps * R_t.

        Section 6 uses factor 3/4 with an exact-accuracy tracker; the
        default 0.7 budgets for the relaxed tracker accuracy so that items
        at exactly the eps |f|_2 boundary still clear the bar.
        """
        threshold = self.report_factor * self.eps * self.l2_estimate()
        return {
            i for i, est in self._published.items() if abs(est) >= threshold
        }

    def query(self) -> float:
        """Number of currently reported heavy hitters."""
        return float(len(self.heavy_hitters()))

    def space_bits(self) -> int:
        ring = sum(cs.space_bits() for cs in self._ring.sketches)
        published = len(self._published) * 128
        return self._l2.space_bits() + ring + published + 128
