"""Adversarially robust Fp for alpha-bounded-deletion streams (Thm 8.3).

Bounded-deletion streams (Definition 8.1) are the paper's Section 8
middle ground between insertion-only and turnstile: deletions are allowed
but the stream retains at least a 1/alpha fraction of the Fp mass it
inserts.  Lemma 8.2 shows such streams have flip number
``O(p alpha eps^-p log n)`` — each (1 ± eps) move of ``|f|_p`` forces the
insertion-only companion mass ``|h|_p^p`` to grow by ``(1 + eps^p/alpha)``
— and Theorem 8.3 plugs that bound into the computation-paths framework
over the turnstile p-stable sketch of [27].
"""

from __future__ import annotations

import numpy as np

from repro.core.computation_paths import (
    ComputationPathsEstimator,
    required_log2_delta0,
)
from repro.core.flip_number import bounded_deletion_flip_number_bound
from repro.core.tracking import MedianTracker, median_copies
from repro.sketches.base import Sketch
from repro.sketches.stable import PStableSketch


class RobustBoundedDeletionFp(Sketch):
    """Theorem 8.3: robust (1 ± eps) Fp tracking under alpha-bounded deletion.

    ``query`` returns the moment ``F_p = |f|_p^p`` (the theorem's
    statement); pass ``track='norm'`` for the norm instead.
    """

    supports_deletions = True

    def __init__(
        self,
        p: float,
        n: int,
        m: int,
        eps: float,
        alpha: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        track: str = "moment",
        delta0_log2_cap: float = 25.0,
        stable_constant: float = 6.0,
        M: int = 1 << 20,
    ):
        if not 1 <= p <= 2:
            raise ValueError(f"Theorem 8.3 covers p in [1, 2], got {p}")
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if track not in ("norm", "moment"):
            raise ValueError(f"track must be 'norm' or 'moment', got {track!r}")
        self.p = p
        self.alpha = alpha
        self.eps = eps
        moment = track == "moment"
        #: Lemma 8.2's flip-number bound for this (p, alpha, eps).
        self.flip_bound = bounded_deletion_flip_number_bound(eps / 2, n, p, alpha, M)
        self.paper_log2_delta0 = required_log2_delta0(
            delta, m, self.flip_bound, eps, value_range=float(M) ** p * n
        )
        practical_log2 = min(-self.paper_log2_delta0, delta0_log2_cap)
        delta0 = 2.0 ** (-practical_log2)
        # Moment tracking: a norm error r is ~ p*r on the moment.
        inner_eps = eps / 4 / (max(p, 1.0) if moment else 1.0)

        def factory(child: np.random.Generator) -> PStableSketch:
            return PStableSketch.for_accuracy(
                p, inner_eps, 0.25, child,
                constant=stable_constant, return_moment=moment,
            )

        copies = median_copies(delta0, base_failure=0.25, constant=0.25)
        inner = MedianTracker(factory, copies=copies, rng=rng)
        self._paths = ComputationPathsEstimator(inner, eps=eps / 2)

    @property
    def changes(self) -> int:
        return self._paths.changes

    def update(self, item: int, delta: int = 1) -> None:
        self._paths.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked ingestion; outputs round at chunk boundaries."""
        self._paths.update_batch(items, deltas)

    def query(self) -> float:
        return self._paths.query()

    def space_bits(self) -> int:
        return self._paths.space_bits()
