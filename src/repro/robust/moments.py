"""Adversarially robust Fp estimation (Theorems 4.1, 4.2, 4.3, 4.4).

* :class:`RobustFpSwitching` — Theorem 4.1 (0 < p <= 2): sketch switching
  over p-stable trackers with ring restarts.
* :class:`RobustFpPaths` — Theorem 4.2 (small delta regime): computation
  paths over a single median-amplified p-stable sketch.
* :class:`RobustTurnstileFp` — Theorem 4.3: the computation-paths
  construction promised the stream class ``S_lambda`` (turnstile streams
  with Fp flip number <= lambda); the linear p-stable base supports
  deletions, and the caller supplies lambda.
* :class:`RobustFpHigh` — Theorem 4.4 (p > 2): computation paths over the
  level-set subsampling estimator.

All classes can track either the norm ``|f|_p`` (the paper's Theorem 4.1
statement) or the moment ``F_p = |f|_p^p`` (Theorems 4.3/8.3 statements)
via ``track``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.computation_paths import (
    ComputationPathsEstimator,
    required_log2_delta0,
)
from repro.core.flip_number import (
    fp_flip_number_bound,
    lp_norm_flip_number_bound,
    monotone_flip_number_bound,
)
from repro.core.bands import MultiplicativeBand
from repro.core.sketch_switching import SwitchingEstimator, restart_ring_size
from repro.core.tracking import MedianTracker
from repro.sketches.base import Sketch
from repro.sketches.fp_high import HighMomentSketch
from repro.sketches.stable import PStableSketch


def _resolve_track(track: str) -> bool:
    if track not in ("norm", "moment"):
        raise ValueError(f"track must be 'norm' or 'moment', got {track!r}")
    return track == "moment"


class RobustFpSwitching(Sketch):
    """Theorem 4.1: robust (1 ± eps) Lp tracking, 0 < p <= 2, by switching.

    The switching protocol (ring restarts included) always operates on the
    *norm* ``|f|_p`` — the quantity Theorem 4.1's analysis is stated for.
    With ``track='moment'`` the wrapper runs the same norm tracker at the
    tightened accuracy ``eps / max(p, 1)`` (a (1 + r) norm error is a
    (1 + r)^p ~ (1 + p r) moment error) and publishes the p-th power.
    This keeps the restart-ring growth argument on the scale it was proved
    for; tracking the moment directly would let the norm grow only
    ``(1+eps/2)^{copies/p}`` between slot reuses, silently violating the
    prefix-mass bound.
    """

    supports_deletions = False

    def __init__(
        self,
        p: float,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        restart: bool = True,
        copies: int | None = None,
        track: str = "norm",
        eps0_fraction: float = 0.25,
        stable_constant: float = 6.0,
        M: int = 1 << 20,
    ):
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.p = p
        self.eps = eps
        self._moment = _resolve_track(track)
        # Everything below runs on the norm scale.
        eps_norm = eps / max(p, 1.0) if self._moment else eps
        self._eps_norm = eps_norm
        #: Lemma 3.6's own copy count (flip number at eps/20).
        self.paper_copies = lp_norm_flip_number_bound(eps_norm / 20, n, p, M)
        if copies is None:
            copies = (
                restart_ring_size(eps_norm, constant=1.0)
                if restart
                else lp_norm_flip_number_bound(eps_norm / 2, n, p, M) + 4
            )
        eps0 = eps_norm * eps0_fraction
        delta0 = delta / max(copies, 1)

        def factory(child: np.random.Generator) -> PStableSketch:
            return PStableSketch.for_accuracy(
                p, eps0, delta0, child, constant=stable_constant,
            )

        self._switcher = SwitchingEstimator(
            factory, copies=copies, rng=rng,
            band=MultiplicativeBand(eps_norm), restart=restart,
        )

    @property
    def switches(self) -> int:
        return self._switcher.switches

    @property
    def copies(self) -> int:
        return self._switcher.copies

    def update(self, item: int, delta: int = 1) -> None:
        self._switcher.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked oblivious ingestion of the norm tracker."""
        self._switcher.update_chunk(items, deltas)

    def query(self) -> float:
        norm = self._switcher.query()
        return norm**self.p if self._moment else norm

    def space_bits(self) -> int:
        return self._switcher.space_bits()


class RobustFpPaths(Sketch):
    """Theorem 4.2: robust Fp for the very-small-delta regime.

    One median-amplified p-stable instance at (capped) failure probability
    delta_0, behind epsilon-rounding.  ``paper_log2_delta0`` reports the
    exact Lemma 3.8 requirement.
    """

    supports_deletions = False

    def __init__(
        self,
        p: float,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        track: str = "norm",
        delta0_log2_cap: float = 25.0,
        stable_constant: float = 6.0,
        M: int = 1 << 20,
    ):
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        self.p = p
        self.eps = eps
        moment = _resolve_track(track)
        bound = fp_flip_number_bound if moment else lp_norm_flip_number_bound
        flips = bound(eps / 2, n, p, M)
        t_lo, t_hi = 1.0, (float(M) ** p * n) if moment else (float(M) ** p * n) ** (1 / p)
        self.paper_log2_delta0 = required_log2_delta0(
            delta, m, flips, eps, value_range=max(t_hi / t_lo, 2.0)
        )
        practical_log2 = min(-self.paper_log2_delta0, delta0_log2_cap)
        delta0 = 2.0 ** (-practical_log2)
        inner_eps = eps / 4 / (max(p, 1.0) if moment else 1.0)

        def factory(child: np.random.Generator) -> PStableSketch:
            return PStableSketch.for_accuracy(
                p, inner_eps, 0.25, child,
                constant=stable_constant, return_moment=moment,
            )

        from repro.core.tracking import median_copies

        copies = median_copies(delta0, base_failure=0.25, constant=0.25)
        inner = MedianTracker(factory, copies=copies, rng=rng)
        self._paths = ComputationPathsEstimator(inner, eps=eps / 2)

    @property
    def changes(self) -> int:
        return self._paths.changes

    def update(self, item: int, delta: int = 1) -> None:
        self._paths.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked ingestion; outputs round at chunk boundaries."""
        self._paths.update_batch(items, deltas)

    def query(self) -> float:
        return self._paths.query()

    def space_bits(self) -> int:
        return self._paths.space_bits()


class RobustTurnstileFp(Sketch):
    """Theorem 4.3: robust Fp for turnstile streams in ``S_lambda``.

    The promise is on the *stream class*: the adversary may delete, but the
    Fp flip number along the stream never exceeds ``lam``.  The space is
    ``O(eps^-2 lam log^2 n)``: one linear sketch at failure probability
    ``~ n^{-C lam}``, epsilon-rounded.
    """

    supports_deletions = True

    def __init__(
        self,
        p: float,
        n: int,
        m: int,
        eps: float,
        lam: int,
        rng: np.random.Generator,
        track: str = "moment",
        delta0_log2_cap: float = 25.0,
        stable_constant: float = 6.0,
    ):
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        if lam < 1:
            raise ValueError(f"flip-number promise lam must be >= 1, got {lam}")
        self.p = p
        self.eps = eps
        self.lam = lam
        moment = _resolve_track(track)
        #: Theorem 4.3's failure target n^{-C lam}, as log2.
        self.paper_log2_delta0 = -float(lam) * math.log2(n)
        practical_log2 = min(-self.paper_log2_delta0, delta0_log2_cap)
        delta0 = 2.0 ** (-practical_log2)
        inner_eps = eps / 4 / (max(p, 1.0) if moment else 1.0)

        def factory(child: np.random.Generator) -> PStableSketch:
            return PStableSketch.for_accuracy(
                p, inner_eps, 0.25, child,
                constant=stable_constant, return_moment=moment,
            )

        from repro.core.tracking import median_copies

        copies = median_copies(delta0, base_failure=0.25, constant=0.25)
        inner = MedianTracker(factory, copies=copies, rng=rng)
        self._paths = ComputationPathsEstimator(inner, eps=eps / 2)

    @property
    def changes(self) -> int:
        return self._paths.changes

    def update(self, item: int, delta: int = 1) -> None:
        self._paths.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked ingestion; outputs round at chunk boundaries."""
        self._paths.update_batch(items, deltas)

    def query(self) -> float:
        return self._paths.query()

    def space_bits(self) -> int:
        return self._paths.space_bits()


class RobustFpHigh(Sketch):
    """Theorem 4.4: robust Fp for p > 2 by computation paths.

    Wraps the level-set subsampling estimator; the delta dependence of the
    base is polylogarithmic, which is why the paper routes p > 2 through
    computation paths rather than switching.
    """

    supports_deletions = False

    def __init__(
        self,
        p: float,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        track: str = "moment",
        M: int = 1 << 20,
    ):
        if p <= 2:
            raise ValueError(f"RobustFpHigh requires p > 2, got {p}")
        self.p = p
        self.eps = eps
        self._moment = _resolve_track(track)
        flips = fp_flip_number_bound(eps / 2, n, p, M)
        self.paper_log2_delta0 = required_log2_delta0(
            delta, m, flips, eps, value_range=float(M) ** p * n
        )
        inner = HighMomentSketch.for_accuracy(p, n, eps / 4, rng)
        self._inner_norm = inner
        self._paths = ComputationPathsEstimator(
            _MomentView(inner, moment=self._moment), eps=eps / 2
        )

    @property
    def changes(self) -> int:
        return self._paths.changes

    def update(self, item: int, delta: int = 1) -> None:
        self._paths.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked ingestion; outputs round at chunk boundaries."""
        self._paths.update_batch(items, deltas)

    def query(self) -> float:
        return self._paths.query()

    def space_bits(self) -> int:
        return self._paths.space_bits()


class _MomentView(Sketch):
    """Present a HighMomentSketch as either a moment or norm estimator."""

    def __init__(self, inner: HighMomentSketch, moment: bool):
        self._inner = inner
        self._moment = moment
        self.supports_deletions = inner.supports_deletions

    def update(self, item: int, delta: int = 1) -> None:
        self._inner.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        self._inner.update_batch(items, deltas)

    def query(self) -> float:
        return self._inner.query() if self._moment else self._inner.query_norm()

    def space_bits(self) -> int:
        return self._inner.space_bits()
