"""Adversarially robust distinct elements (Theorems 5.1, 5.4).

Two constructions, one per framework:

* :class:`RobustDistinctElements` — Theorem 5.1: sketch switching over a
  static F0 tracker (KMV), with the Theorem 4.1 ring-restart optimization
  reducing the copy count from ``Theta(eps^-1 log n)`` to
  ``Theta(eps^-1 log eps^-1)``.

* :class:`FastRobustDistinctElements` — Theorem 5.4: computation paths
  over the fast level-list estimator (Algorithm 2), whose update time
  depends only poly-log-logarithmically on the inflated failure
  probability ``delta_0 ~ n^{-(C/eps) log n}``.

Parameter realism: the theorems' constant factors (eps/20 inner accuracy,
exact delta_0) are computed and exposed (``paper_copies``,
``paper_log2_delta0``) so experiments can report them, but the *running*
configuration uses documented practical constants — an inner accuracy of
``eps0 = eps/4`` (which the Lemma 3.6 error composition still covers:
published in (1 ± eps/2) band of an (1 ± eps/4)-correct estimate) and a
capped ``log(1/delta_0)``.  Both knobs are explicit arguments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.computation_paths import (
    ComputationPathsEstimator,
    required_log2_delta0,
)
from repro.core.bands import MultiplicativeBand
from repro.core.flip_number import monotone_flip_number_bound
from repro.core.sketch_switching import SwitchingEstimator, restart_ring_size
from repro.sketches.base import Sketch
from repro.sketches.fast_f0 import FastF0Sketch
from repro.sketches.kmv import KMVSketch


class RobustDistinctElements(Sketch):
    """Theorem 5.1: robust (1 ± eps) F0 tracking by sketch switching."""

    supports_deletions = False

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        restart: bool = True,
        copies: int | None = None,
        eps0_fraction: float = 0.25,
        kmv_constant: float = 3.0,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        #: The copy count Lemma 3.6 itself would use (flip number at eps/20).
        self.paper_copies = monotone_flip_number_bound(eps / 20, 1.0, float(n))
        if copies is None:
            if restart:
                copies = restart_ring_size(eps, constant=1.0)
            else:
                # Switches occur only when the published value moves by an
                # (eps/2) factor, and F0 <= n is monotone.
                copies = monotone_flip_number_bound(eps / 2, 1.0, float(n)) + 4
        eps0 = eps * eps0_fraction
        delta0 = delta / max(copies, 1)

        def factory(child: np.random.Generator) -> KMVSketch:
            return KMVSketch.for_accuracy(
                eps0, delta0, child, constant=kmv_constant
            )

        self._switcher = SwitchingEstimator(
            factory, copies=copies, rng=rng,
            band=MultiplicativeBand(eps), restart=restart,
        )

    @property
    def switches(self) -> int:
        return self._switcher.switches

    @property
    def copies(self) -> int:
        return self._switcher.copies

    def update(self, item: int, delta: int = 1) -> None:
        self._switcher.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked oblivious ingestion (F0 is monotone: bit-for-bit)."""
        self._switcher.update_chunk(items, deltas)

    def query(self) -> float:
        return self._switcher.query()

    def space_bits(self) -> int:
        return self._switcher.space_bits()


class FastRobustDistinctElements(Sketch):
    """Theorem 5.4: robust F0 with very fast updates via computation paths.

    The true Lemma 3.8 failure probability for this problem is
    ``delta_0 = n^{-(C/eps) log n}``; :attr:`paper_log2_delta0` reports the
    exact exponent for the experiment logs, while the running sketch uses
    ``min(-paper_log2_delta0, delta0_log2_cap)`` bits of failure budget so
    the level lists stay laptop-sized.  The *structure* — one instance,
    epsilon-rounded outputs, d-wise hashing with batched evaluation — is
    exactly the theorem's.
    """

    supports_deletions = False

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        delta0_log2_cap: float = 30.0,
        batch: bool = False,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        flips = monotone_flip_number_bound(eps / 2, 1.0, float(n))
        #: Exact Lemma 3.8 requirement (log2 of delta_0) — hugely negative.
        self.paper_log2_delta0 = required_log2_delta0(
            delta, m, flips, eps, value_range=float(n)
        )
        practical_log2 = min(-self.paper_log2_delta0, delta0_log2_cap)
        delta0 = 2.0 ** (-practical_log2)
        inner = FastF0Sketch(n=n, eps=eps / 4, delta=delta0, rng=rng, batch=batch)
        self._paths = ComputationPathsEstimator(inner, eps=eps / 2)

    @property
    def changes(self) -> int:
        return self._paths.changes

    def update(self, item: int, delta: int = 1) -> None:
        self._paths.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked ingestion; outputs round at chunk boundaries."""
        self._paths.update_batch(items, deltas)

    def query(self) -> float:
        return self._paths.query()

    def space_bits(self) -> int:
        return self._paths.space_bits()


def paper_space_bound_theorem_51(n: int, eps: float, delta: float) -> float:
    """The Theorem 5.1 bound in bits (up to its hidden constant).

    O( log(1/eps)/eps * ( (log 1/eps + log 1/delta + log log n)/eps^2
       + log n ) ) — reported next to measured space in the experiments.
    """
    le = math.log(1.0 / eps)
    return (
        le
        / eps
        * ((le + math.log(1.0 / delta) + math.log(max(2.0, math.log(n)))) / eps**2
           + math.log(n))
    )


def paper_space_bound_theorem_54(n: int, eps: float) -> float:
    """The Theorem 5.4 bound O(eps^-3 log^3 n) in bits (hidden constant 1)."""
    return math.log(n) ** 3 / eps**3
