"""The paper's robust algorithms, one class per theorem."""

from repro.robust.bounded_deletion import RobustBoundedDeletionFp
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.dp import (
    RobustDPDEDistinctElements,
    RobustDPDEF2,
    RobustDPDistinctElements,
    RobustDPEstimator,
    RobustDPF2,
)
from repro.robust.distinct import (
    FastRobustDistinctElements,
    RobustDistinctElements,
    paper_space_bound_theorem_51,
    paper_space_bound_theorem_54,
)
from repro.robust.entropy import RobustEntropy
from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.robust.moments import (
    RobustFpHigh,
    RobustFpPaths,
    RobustFpSwitching,
    RobustTurnstileFp,
)

__all__ = [
    "RobustBoundedDeletionFp",
    "CryptoRobustDistinctElements",
    "FastRobustDistinctElements",
    "RobustDPDEDistinctElements",
    "RobustDPDEF2",
    "RobustDPDistinctElements",
    "RobustDPEstimator",
    "RobustDPF2",
    "RobustDistinctElements",
    "paper_space_bound_theorem_51",
    "paper_space_bound_theorem_54",
    "RobustEntropy",
    "RobustHeavyHitters",
    "RobustFpHigh",
    "RobustFpPaths",
    "RobustFpSwitching",
    "RobustTurnstileFp",
]
