"""Adversarially robust Shannon entropy estimation (Theorem 7.3).

Sketch switching applied to ``g = 2^H``: an additive-eps guarantee on H is
a multiplicative ``2^(±eps)`` guarantee on g, so the Algorithm 1 machinery
applies with the flip-number bound of Proposition 7.2 (``O~(eps^-3 log^3)``
— each (1 ± eps) change of ``2^H`` forces the stream's L1 mass to grow by
a (1 + Theta~(eps^2/log^2 n)) factor).

We run the switching protocol *additively on H directly* — the generic
:class:`~repro.core.sketch_switching.SwitchingEstimator` under an
:class:`~repro.core.bands.AdditiveBand`, which is the same discipline
expressed in the exponent.  The base static estimator is the
Clifford–Cosma skewed-stable sketch; with a random oracle this is the
``O~(eps^-2)`` estimator of [23]/[11] the theorem consumes.  Because the
band is a policy rather than a separate loop, this estimator runs
through the execution engine (``api.ingest(engine=...)``) like any other
switching wrapper: entropy's crossing chunks are resolved by bisection
of the active copy (coalescing transient excursions at cell granularity
— the additive band is not bisect-exact since H is not monotone), and
clean chunks are aggregated once for all copies.

The paper-faithful copy count (``paper_copies``) is astronomically
conservative for laptop streams; the default budget covers the measured
flip counts of the experiment workloads and the estimator exposes both
numbers.  ``on_exhausted="clamp"`` is the documented degradation mode if a
stream out-flips the budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.bands import AdditiveBand
from repro.core.flip_number import entropy_flip_number_bound
from repro.core.sketch_switching import SwitchingEstimator
from repro.sketches.base import Sketch
from repro.sketches.entropy import CliffordCosmaSketch


class RobustEntropy(Sketch):
    """Theorem 7.3: robust additive-eps entropy tracking (bits by default)."""

    supports_deletions = False

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        copies: int | None = None,
        base: float = 2.0,
        cc_constant: float = 4.0,
        on_exhausted: str = "clamp",
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        #: Proposition 7.2's bound — what Lemma 3.6 would provision.
        self.paper_copies = entropy_flip_number_bound(eps, n, m)
        if copies is None:
            # H moves within [0, log2 n]; additive eps/2 steps, doubled for
            # non-monotone oscillation, is the practical budget.
            import math

            copies = max(8, int(4 * math.log2(max(n, 2)) / eps))
        delta0 = delta / max(copies, 1)

        def factory(child: np.random.Generator) -> CliffordCosmaSketch:
            return CliffordCosmaSketch.for_accuracy(
                eps / 4, delta0, child, constant=cc_constant, base=base
            )

        self._switcher = SwitchingEstimator(
            factory, copies=copies, rng=rng,
            band=AdditiveBand(eps), on_exhausted=on_exhausted,
        )

    @property
    def switches(self) -> int:
        return self._switcher.switches

    @property
    def copies(self) -> int:
        return self._switcher.copies

    def update(self, item: int, delta: int = 1) -> None:
        self._switcher.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked oblivious ingestion (additive band per chunk boundary)."""
        self._switcher.update_chunk(items, deltas)

    def query(self) -> float:
        return self._switcher.query()

    def space_bits(self) -> int:
        return self._switcher.space_bits()
