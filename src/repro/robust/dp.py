"""DP-robust estimators (Hassidim et al. 2020): discipline + band, no loop.

"Adversarially Robust Streaming Algorithms via Differential Privacy"
(Hassidim, Kaplan, Mansour, Matias, Stemmer — NeurIPS 2020) replaces
Algorithm 1's probe-and-burn with *private aggregate publishing*: every
copy is fed every update, publish decisions read a **noisy median over
all copies** behind a sparse-vector (AboveThreshold) budget, and no copy
is burned on a switch — the Laplace noise, not retirement, keeps each
copy's randomness hidden from the adversary.  By advanced composition a
set of ``k`` copies supports ``~k^2`` published switches, so a flip
bound of ``lambda`` costs ``O(sqrt(lambda))`` copies instead of
Algorithm 1's ``Theta(lambda)`` — the space advantage
:mod:`benchmarks/bench_dp.py` measures.  (For *monotone* quantities the
paper's own Theorem 4.1 restart ring is the stronger optimization; the
DP scheme's edge is that it never needs the ring's growth argument, so
it composes with any static sketch the flip bound covers.)

These wrappers are the refactor's existence proof: a new robustness
scheme is **a probe discipline plus a band policy**, not a fifth
hand-rolled loop.  Both classes below contain no protocol code at all —
they size a copy set, pick :class:`~repro.core.bands.MultiplicativeBand`
and :class:`~repro.core.disciplines.PrivateAggregateDiscipline`, and
delegate everything (per-item, chunked, and both execution engines) to
the one :class:`~repro.core.sketch_switching.SwitchingEstimator`.

The adversarial layer runs against them unchanged — the per-item
:class:`~repro.adversary.game.AdversarialGame` and the Algorithm 3 AMS
attack only ever see published estimates
(``tests/test_robust_dp.py`` pins survival).
"""

from __future__ import annotations

import numpy as np

from repro.core.bands import MultiplicativeBand
from repro.core.disciplines import PrivateAggregateDiscipline, dp_copy_count
from repro.core.flip_number import (
    fp_flip_number_bound,
    monotone_flip_number_bound,
)
from repro.core.sketch_switching import SwitchingEstimator
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch
from repro.sketches.stable import PStableSketch

__all__ = ["RobustDPDistinctElements", "RobustDPEstimator", "RobustDPF2"]


class RobustDPEstimator(Sketch):
    """Shared delegation shell of the DP-robust wrappers.

    Subclasses size a copy factory and a flip bound in ``__init__`` and
    call :meth:`_build`; everything else — the per-item protocol, the
    chunked path, engine sessions, budget state — is the generic
    switching estimator under the private-aggregate discipline.
    """

    supports_deletions = False

    def _build(
        self,
        factory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        switch_budget: int,
        noise_scale: float | None,
    ) -> None:
        discipline = PrivateAggregateDiscipline(
            noise_scale=noise_scale if noise_scale is not None else eps / 12,
            switch_budget=switch_budget,
        )
        self._switcher = SwitchingEstimator(
            factory, copies=copies, rng=rng,
            band=MultiplicativeBand(eps), discipline=discipline,
        )

    @property
    def switches(self) -> int:
        return self._switcher.switches

    @property
    def copies(self) -> int:
        return self._switcher.copies

    @property
    def discipline(self) -> PrivateAggregateDiscipline:
        return self._switcher.discipline

    def budget_state(self) -> dict:
        """Sparse-vector budget introspection (publications, remaining)."""
        return self._switcher.discipline.budget_state()

    def update(self, item: int, delta: int = 1) -> None:
        self._switcher.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked oblivious ingestion through the shared protocol."""
        self._switcher.update_chunk(items, deltas)

    def query(self) -> float:
        return self._switcher.query()

    def space_bits(self) -> int:
        return self._switcher.space_bits()


class RobustDPDistinctElements(RobustDPEstimator):
    """Robust (1 ± eps) F0 tracking by DP aggregate publishing over KMV.

    The DP twin of :class:`~repro.robust.distinct.RobustDistinctElements`
    (Theorem 5.1): same static tracker, same multiplicative band, but
    ``O(sqrt(lambda))`` copies under the private-aggregate discipline
    instead of ``Theta(lambda)`` burned copies.  ``paper_copies_plain``
    records what plain Algorithm 1 would provision for the same flip
    bound, for the space comparison the benchmark reports.
    """

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        copies: int | None = None,
        switch_budget: int | None = None,
        noise_scale: float | None = None,
        eps0_fraction: float = 0.25,
        kmv_constant: float = 3.0,
        dp_constant: float = 2.0,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        # F0 <= n is monotone; switches need an (eps/2)-factor move.
        flips = monotone_flip_number_bound(eps / 2, 1.0, float(n))
        #: Plain Algorithm 1's live copy count for the same flip bound.
        self.paper_copies_plain = flips + 4
        if copies is None:
            copies = dp_copy_count(flips, constant=dp_constant)
        if switch_budget is None:
            switch_budget = flips + 4  # sized to the stream class
        eps0 = eps * eps0_fraction
        delta0 = delta / max(copies, 1)

        def factory(child: np.random.Generator) -> KMVSketch:
            return KMVSketch.for_accuracy(
                eps0, delta0, child, constant=kmv_constant
            )

        self._build(factory, copies, eps, rng, switch_budget, noise_scale)


class RobustDPF2(RobustDPEstimator):
    """Robust (1 ± eps) F2 tracking by DP aggregate publishing.

    The tracker the Algorithm 3 attack experiment runs against: each
    copy is a static 2-stable F2 sketch, the decision estimate is the
    noisy median over all copies, and the attack — which collapses one
    unprotected AMS sketch by probing its published estimates — only
    ever sees the rounded private aggregate.
    """

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        copies: int | None = None,
        switch_budget: int | None = None,
        noise_scale: float | None = None,
        stable_constant: float = 6.0,
        dp_constant: float = 2.0,
        M: int = 1 << 20,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        # F2 tracking on the moment scale (insertion-only: monotone).
        flips = fp_flip_number_bound(eps / 2, n, 2.0, M)
        self.paper_copies_plain = flips + 4
        if copies is None:
            copies = dp_copy_count(flips, constant=dp_constant)
        if switch_budget is None:
            switch_budget = flips + 4
        # The noisy median supplies its own cross-copy amplification, so
        # each copy runs at constant failure probability like the
        # MedianTracker base instances do.
        eps0 = eps / 4 / 2.0  # moment scale: halve the norm-scale budget

        def factory(child: np.random.Generator) -> PStableSketch:
            return PStableSketch.for_accuracy(
                2.0, eps0, 0.25, child,
                constant=stable_constant, return_moment=True,
            )

        self._build(factory, copies, eps, rng, switch_budget, noise_scale)
