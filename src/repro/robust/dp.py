"""DP-robust estimators (Hassidim et al. 2020): discipline + band, no loop.

"Adversarially Robust Streaming Algorithms via Differential Privacy"
(Hassidim, Kaplan, Mansour, Matias, Stemmer — NeurIPS 2020) replaces
Algorithm 1's probe-and-burn with *private aggregate publishing*: every
copy is fed every update, publish decisions read a **noisy median over
all copies** behind a sparse-vector (AboveThreshold) budget, and no copy
is burned on a switch — the Laplace noise, not retirement, keeps each
copy's randomness hidden from the adversary.  By advanced composition a
set of ``k`` copies supports ``~k^2`` published switches, so a flip
bound of ``lambda`` costs ``O(sqrt(lambda))`` copies instead of
Algorithm 1's ``Theta(lambda)`` — the space advantage
:mod:`benchmarks/bench_dp.py` measures.  (For *monotone* quantities the
paper's own Theorem 4.1 restart ring is the stronger optimization; the
DP scheme's edge is that it never needs the ring's growth argument, so
it composes with any static sketch the flip bound covers.)

These wrappers are the refactor's existence proof: a new robustness
scheme is **a probe discipline plus a band policy**, not a fifth
hand-rolled loop.  None of the classes below contain protocol code —
they size a copy set, pick :class:`~repro.core.bands.MultiplicativeBand`
and :class:`~repro.core.disciplines.PrivateAggregateDiscipline`, and
delegate everything (per-item, chunked, and both execution engines) to
the one :class:`~repro.core.sketch_switching.SwitchingEstimator`.

The ``DPDE`` pair applies the Attias et al. 2022 sharpening: a
:class:`~repro.core.ladder.DifferenceLadder` of cheap
difference-estimator tiers answers most publications against its own
budget tiers, and the strong copies — now provisioned per *checkpoint*
rather than per publication — are charged only when the accumulated
difference out-grows the ladder.  Same band, same protocol, one more
discipline (:class:`~repro.core.disciplines
.DifferenceAggregateDiscipline`) over a grouped copy set
(:meth:`~repro.core.copies.CopyManager.grouped`).

The adversarial layer runs against them unchanged — the per-item
:class:`~repro.adversary.game.AdversarialGame` and the Algorithm 3 AMS
attack only ever see published estimates
(``tests/test_robust_dp.py`` pins survival).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bands import MultiplicativeBand
from repro.core.copies import CopyManager
from repro.core.disciplines import (
    DifferenceAggregateDiscipline,
    PrivateAggregateDiscipline,
    dp_copy_count,
)
from repro.core.flip_number import (
    fp_flip_number_bound,
    monotone_flip_number_bound,
)
from repro.core.ladder import DifferenceLadder, default_difference_ladder
from repro.core.sketch_switching import SwitchingEstimator
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch
from repro.sketches.stable import PStableSketch

__all__ = [
    "RobustDPDEDistinctElements",
    "RobustDPDEF2",
    "RobustDPDistinctElements",
    "RobustDPEstimator",
    "RobustDPF2",
    "dpde_strong_budget",
]


class RobustDPEstimator(Sketch):
    """Shared delegation shell of the DP-robust wrappers.

    Subclasses size a copy factory and a flip bound in ``__init__`` and
    call :meth:`_build`; everything else — the per-item protocol, the
    chunked path, engine sessions, budget state — is the generic
    switching estimator under the private-aggregate discipline.
    """

    supports_deletions = False

    def _build(
        self,
        factory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        switch_budget: int,
        noise_scale: float | None,
    ) -> None:
        discipline = PrivateAggregateDiscipline(
            noise_scale=noise_scale if noise_scale is not None else eps / 12,
            switch_budget=switch_budget,
        )
        self._switcher = SwitchingEstimator(
            factory, copies=copies, rng=rng,
            band=MultiplicativeBand(eps), discipline=discipline,
        )

    def _build_ladder(
        self,
        make_factories,
        eps: float,
        rng: np.random.Generator,
        flips: int,
        ladder: DifferenceLadder | None,
        strong_copies: int | None,
        switch_budget: int | None,
        noise_scale: float | None,
        dp_constant: float,
    ) -> None:
        """Size and assemble one ladder tracker (the DPDE twin of
        :meth:`_build`).

        Keeps the sizing rules in one place: the strong budget is the
        checkpoint rescaling of the flip bound
        (:func:`dpde_strong_budget`), the strong group is
        ``O(sqrt(budget))`` by the same rule as the plain DP pair, and
        the copy set is grouped tiers-then-strong.
        ``make_factories(strong_copies)`` returns the
        ``(tier_factory, strong_factory)`` pair — deferred because
        per-copy failure budgets depend on the resolved group size.
        """
        if ladder is None:
            ladder = default_difference_ladder()
        if switch_budget is None:
            switch_budget = dpde_strong_budget(
                flips, eps, ladder.tiers[-1].span
            )
        if strong_copies is None:
            strong_copies = dp_copy_count(switch_budget, constant=dp_constant)
        tier_factory, strong_factory = make_factories(strong_copies)
        manager = CopyManager.grouped(
            [(tier_factory, t.copies) for t in ladder.tiers]
            + [(strong_factory, strong_copies)],
            rng,
        )
        discipline = DifferenceAggregateDiscipline(
            ladder=ladder,
            noise_scale=noise_scale if noise_scale is not None else eps / 12,
            switch_budget=switch_budget,
        )
        self._switcher = SwitchingEstimator(
            copies=manager, band=MultiplicativeBand(eps),
            discipline=discipline,
        )

    @property
    def switches(self) -> int:
        return self._switcher.switches

    @property
    def copies(self) -> int:
        return self._switcher.copies

    @property
    def discipline(self):
        """The budgeted probe discipline (private-aggregate or ladder)."""
        return self._switcher.discipline

    def budget_state(self) -> dict:
        """Sparse-vector budget introspection (publications, remaining)."""
        return self._switcher.discipline.budget_state()

    def update(self, item: int, delta: int = 1) -> None:
        self._switcher.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Chunked oblivious ingestion through the shared protocol."""
        self._switcher.update_chunk(items, deltas)

    def query(self) -> float:
        return self._switcher.query()

    def space_bits(self) -> int:
        return self._switcher.space_bits()


class RobustDPDistinctElements(RobustDPEstimator):
    """Robust (1 ± eps) F0 tracking by DP aggregate publishing over KMV.

    The DP twin of :class:`~repro.robust.distinct.RobustDistinctElements`
    (Theorem 5.1): same static tracker, same multiplicative band, but
    ``O(sqrt(lambda))`` copies under the private-aggregate discipline
    instead of ``Theta(lambda)`` burned copies.  ``paper_copies_plain``
    records what plain Algorithm 1 would provision for the same flip
    bound, for the space comparison the benchmark reports.
    """

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        copies: int | None = None,
        switch_budget: int | None = None,
        noise_scale: float | None = None,
        eps0_fraction: float = 0.25,
        kmv_constant: float = 3.0,
        dp_constant: float = 2.0,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        # F0 <= n is monotone; switches need an (eps/2)-factor move.
        flips = monotone_flip_number_bound(eps / 2, 1.0, float(n))
        #: Plain Algorithm 1's live copy count for the same flip bound.
        self.paper_copies_plain = flips + 4
        if copies is None:
            copies = dp_copy_count(flips, constant=dp_constant)
        if switch_budget is None:
            switch_budget = flips + 4  # sized to the stream class
        eps0 = eps * eps0_fraction
        delta0 = delta / max(copies, 1)

        def factory(child: np.random.Generator) -> KMVSketch:
            return KMVSketch.for_accuracy(
                eps0, delta0, child, constant=kmv_constant
            )

        self._build(factory, copies, eps, rng, switch_budget, noise_scale)


class RobustDPF2(RobustDPEstimator):
    """Robust (1 ± eps) F2 tracking by DP aggregate publishing.

    The tracker the Algorithm 3 attack experiment runs against: each
    copy is a static 2-stable F2 sketch, the decision estimate is the
    noisy median over all copies, and the attack — which collapses one
    unprotected AMS sketch by probing its published estimates — only
    ever sees the rounded private aggregate.
    """

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        copies: int | None = None,
        switch_budget: int | None = None,
        noise_scale: float | None = None,
        stable_constant: float = 6.0,
        dp_constant: float = 2.0,
        M: int = 1 << 20,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.n = n
        self.m = m
        self.eps = eps
        # F2 tracking on the moment scale (insertion-only: monotone).
        flips = fp_flip_number_bound(eps / 2, n, 2.0, M)
        self.paper_copies_plain = flips + 4
        if copies is None:
            copies = dp_copy_count(flips, constant=dp_constant)
        if switch_budget is None:
            switch_budget = flips + 4
        # The noisy median supplies its own cross-copy amplification, so
        # each copy runs at constant failure probability like the
        # MedianTracker base instances do.
        eps0 = eps / 4 / 2.0  # moment scale: halve the norm-scale budget

        def factory(child: np.random.Generator) -> PStableSketch:
            return PStableSketch.for_accuracy(
                2.0, eps0, 0.25, child,
                constant=stable_constant, return_moment=True,
            )

        self._build(factory, copies, eps, rng, switch_budget, noise_scale)


# ----------------------------------------------------------------------
# Difference-estimator ladders (Attias et al. 2022)
# ----------------------------------------------------------------------


def dpde_strong_budget(
    flips: int, eps: float, top_span: float, margin: int = 4
) -> int:
    """Checkpoint (strong-charge) budget for a flip bound under a ladder.

    A checkpoint window only closes once the tracked value has moved by
    the ladder's top band share ``top_span`` relative to the checkpoint
    (or the tier capacities are spent — sized to not bind for monotone
    growth).  For a monotone quantity whose flip bound counts
    ``(1 + eps/2)``-factor moves, the checkpoints needed are therefore
    the flips *rescaled between the two growth factors*::

        checkpoints ~ flips * log(1 + eps/2) / log(1 + top_span)

    which is what makes the strong copy set — sized ``O(sqrt(budget))``
    by the same advanced-composition rule as the plain DP discipline —
    strictly smaller than PR 4's all-publication budget demands.
    """
    if flips < 1:
        raise ValueError(f"flip bound must be >= 1, got {flips}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0,1), got {eps}")
    if top_span <= 0:
        raise ValueError(f"top_span must be positive, got {top_span}")
    rescale = math.log1p(eps / 2) / math.log1p(top_span)
    return math.ceil(flips * min(1.0, rescale)) + margin


class RobustDPDEDistinctElements(RobustDPEstimator):
    """Robust (1 ± eps) F0 via a DP difference-estimator ladder over KMV.

    The Attias et al. 2022 sharpening of
    :class:`RobustDPDistinctElements`: the strong KMV checkpoint group
    is provisioned for *checkpoints* instead of publications (strictly
    fewer sparse-vector charges, hence fewer strong copies), and the
    in-between publications are answered by a geometric ladder of
    cheap difference-estimator tiers — KMV instances ``tier_eps_factor``
    coarser (quadratically fewer bottom-k slots), read at both window
    endpoints so their correlated errors track the *growth* since the
    checkpoint.  ``paper_copies_plain`` keeps the Algorithm 1 yardstick
    for the space comparisons the benchmark reports.
    """

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        strong_copies: int | None = None,
        ladder: DifferenceLadder | None = None,
        switch_budget: int | None = None,
        noise_scale: float | None = None,
        eps0_fraction: float = 0.25,
        tier_eps_factor: float = 2.0,
        kmv_constant: float = 3.0,
        dp_constant: float = 2.0,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        if tier_eps_factor < 1:
            raise ValueError(
                f"tier_eps_factor must be >= 1, got {tier_eps_factor}"
            )
        self.n = n
        self.m = m
        self.eps = eps
        flips = monotone_flip_number_bound(eps / 2, 1.0, float(n))
        self.paper_copies_plain = flips + 4
        #: What the plain DP discipline would provision (PR 4 sizing) —
        #: the copy/space contrast bench_dp.py reports.
        self.dp_copies_plain = dp_copy_count(flips, constant=dp_constant)
        eps0 = eps * eps0_fraction
        tier_eps0 = min(0.5, eps0 * tier_eps_factor)

        def make_factories(strong_copies: int):
            delta0 = delta / max(strong_copies, 1)

            def strong_factory(child: np.random.Generator) -> KMVSketch:
                return KMVSketch.for_accuracy(
                    eps0, delta0, child, constant=kmv_constant
                )

            def tier_factory(child: np.random.Generator) -> KMVSketch:
                return KMVSketch.for_accuracy(
                    tier_eps0, delta0, child, constant=kmv_constant
                )

            return tier_factory, strong_factory

        self._build_ladder(make_factories, eps, rng, flips, ladder,
                           strong_copies, switch_budget, noise_scale,
                           dp_constant)


class RobustDPDEF2(RobustDPEstimator):
    """Robust (1 ± eps) F2 via the difference-estimator ladder.

    The ladder twin of :class:`RobustDPF2`, run against the Algorithm 3
    attack in experiment ``E.DPDE``: the adversary still only sees
    published aggregates, but most of them are answered from the cheap
    tiers — the strong p-stable group is charged once per checkpoint,
    so the same attack is survived with strictly fewer sparse-vector
    budget charges.
    """

    def __init__(
        self,
        n: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        strong_copies: int | None = None,
        ladder: DifferenceLadder | None = None,
        switch_budget: int | None = None,
        noise_scale: float | None = None,
        tier_eps_factor: float = 2.0,
        stable_constant: float = 6.0,
        dp_constant: float = 2.0,
        M: int = 1 << 20,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        if tier_eps_factor < 1:
            raise ValueError(
                f"tier_eps_factor must be >= 1, got {tier_eps_factor}"
            )
        self.n = n
        self.m = m
        self.eps = eps
        flips = fp_flip_number_bound(eps / 2, n, 2.0, M)
        self.paper_copies_plain = flips + 4
        self.dp_copies_plain = dp_copy_count(flips, constant=dp_constant)
        eps0 = eps / 4 / 2.0  # moment scale: halve the norm-scale budget
        tier_eps0 = min(0.5, eps0 * tier_eps_factor)

        def make_factories(strong_copies: int):
            def strong_factory(child: np.random.Generator) -> PStableSketch:
                return PStableSketch.for_accuracy(
                    2.0, eps0, 0.25, child,
                    constant=stable_constant, return_moment=True,
                )

            def tier_factory(child: np.random.Generator) -> PStableSketch:
                return PStableSketch.for_accuracy(
                    2.0, tier_eps0, 0.25, child,
                    constant=stable_constant, return_moment=True,
                )

            return tier_factory, strong_factory

        self._build_ladder(make_factories, eps, rng, flips, ladder,
                           strong_copies, switch_budget, noise_scale,
                           dp_constant)
