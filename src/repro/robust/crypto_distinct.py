"""Optimal-space robust distinct elements via cryptography (Theorem 10.1).

The Section 10 transformation: pass every stream item through a secret
pseudorandom permutation ``Pi`` before it reaches a static F0 tracker
whose state is *duplicate-insensitive* (re-inserting a previously seen
item never changes the state — KMV and HLL both qualify; the property is
what makes adaptivity toothless, because repeating an old item gains the
adversary nothing and a fresh item looks uniformly random through ``Pi``).

Against a polynomial-time adversary the PRP is indistinguishable from a
truly random permutation, so the adaptive game collapses to the static
stream ``1, 2, ..., k`` — and the static tracking guarantee finishes the
proof.  The cost over the static algorithm is just the stored PRP key
(``O(c log n)`` bits), which is why this route is *optimal-space*, unlike
the wrapper frameworks' multiplicative overheads.

``oracle_mode=True`` models the random-oracle variant (key not charged);
otherwise the Feistel PRP key is included in ``space_bits``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.feistel import FeistelPermutation
from repro.hashing.prf import PRF
from repro.sketches.base import Sketch, as_batch_arrays, spawn_rngs
from repro.sketches.hll import HyperLogLog
from repro.sketches.kmv import KMVSketch


class CryptoRobustDistinctElements(Sketch):
    """Theorem 10.1: PRP preprocessing in front of a duplicate-insensitive
    F0 tracker.

    Parameters
    ----------
    n:
        Universe size (the PRP's domain).
    eps:
        Target accuracy of the tracker.
    base:
        ``"kmv"`` (default) or ``"hll"`` — both have the required
        duplicate-insensitive state.
    oracle_mode:
        If True, model the random-oracle variant: the permutation key is
        not charged to space (Theorem 10.1's first statement).
    """

    supports_deletions = False

    def __init__(
        self,
        n: int,
        eps: float,
        rng: np.random.Generator,
        delta: float = 0.05,
        base: str = "kmv",
        oracle_mode: bool = False,
        key_bits: int = 128,
    ):
        if base not in ("kmv", "hll"):
            raise ValueError(f"base must be 'kmv' or 'hll', got {base!r}")
        self.n = n
        self.eps = eps
        self.oracle_mode = oracle_mode
        perm_rng, base_rng = spawn_rngs(rng, 2)
        self._perm = FeistelPermutation(n, PRF.from_seed(perm_rng, key_bits))
        # Simulation-only memo of the permutation (a native implementation
        # recomputes the PRP per item); not charged to space_bits.
        self._perm_cache: dict[int, int] = {}
        if base == "kmv":
            self._base: Sketch = KMVSketch.for_accuracy(eps, delta, base_rng)
        else:
            self._base = HyperLogLog.for_accuracy(eps, base_rng)

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("distinct elements requires non-negative updates")
        if delta == 0:
            return
        self._base.update(self._perm.forward(item), delta)

    def update_batch(self, items, deltas=None) -> None:
        """Permute the chunk, then batch-feed the duplicate-insensitive base.

        The Feistel network evaluates per item (it is the cryptographic
        boundary, not the hot loop); memoising repeated items keeps the
        amortized cost at one PRP evaluation per distinct item, and the
        base sketch's vectorized path takes it from there.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if np.any(deltas < 0):
            raise ValueError("distinct elements requires non-negative updates")
        keep = deltas > 0
        items, deltas = items[keep], deltas[keep]
        if len(items) == 0:
            return
        cache = self._perm_cache
        forward = self._perm.forward
        permuted = np.empty(items.shape, dtype=np.int64)
        for pos, item in enumerate(items.tolist()):
            image = cache.get(item)
            if image is None:
                image = forward(item)
                cache[item] = image
            permuted[pos] = image
        self._base.update_batch(permuted, deltas)

    def query(self) -> float:
        return self._base.query()

    def state_fingerprint(self):
        """Duplicate-insensitivity probe (delegates to the base sketch)."""
        fingerprint = getattr(self._base, "state_fingerprint", None)
        if fingerprint is None:
            raise AttributeError(f"{type(self._base).__name__} exposes no state")
        return fingerprint()

    def space_bits(self) -> int:
        key = 0 if self.oracle_mode else self._perm.space_bits()
        return self._base.space_bits() + key
