"""``python -m repro`` — the reproduction CLI (see repro.experiments.cli).

Subcommands: ``list`` / ``run`` / ``run-all`` (the Table-1 experiment
driver) and ``trace`` (summarize a JSONL telemetry trace written via
``ingest(telemetry="jsonl:PATH")``).
"""

import sys

from repro.experiments.cli import main

sys.exit(main())
