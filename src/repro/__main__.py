"""``python -m repro`` — the reproduction CLI (see repro.experiments.cli)."""

import sys

from repro.experiments.cli import main

sys.exit(main())
