"""High-level facade: one entry point per streaming problem.

``robust_estimator(problem, ...)`` builds the paper's recommended robust
algorithm for each problem with sensible defaults, so downstream users
don't need to know which theorem applies:

====================  =============================  ==================
problem               algorithm                      paper
====================  =============================  ==================
"distinct"            sketch switching over KMV      Theorem 5.1
"distinct-fast"       computation paths over Alg 2   Theorem 5.4
"distinct-crypto"     PRP preprocessing              Theorem 10.1
"distinct-dp"         DP aggregate over KMV copies   Hassidim et al. '20
"distinct-dpde"       DP difference ladder over KMV  Attias et al. '22
"fp"                  switching over p-stable        Theorem 4.1
"fp-small-delta"      computation paths, p-stable    Theorem 4.2
"fp-high"             computation paths, level sets  Theorem 4.4
"f2-dp"               DP aggregate over p-stable     Hassidim et al. '20
"f2-dpde"             DP difference ladder, p-stable Attias et al. '22
"heavy-hitters"       epoch-frozen CountSketch ring  Theorem 6.5
"entropy"             additive switching over CC     Theorem 7.3
"bounded-deletion"    computation paths, turnstile   Theorem 8.3
====================  =============================  ==================

Every estimator satisfies the :class:`repro.sketches.base.Sketch`
contract (``process_update`` / ``query`` / ``space_bits``), including the
batched ``update_batch`` surface; :func:`ingest` is the convenience
front-end that replays any stream representation through the vectorized
pipeline — optionally through the parallel execution engine
(``engine="process:4"``) and with double-buffered chunk prefetching
(``prefetch=2``) — and reports throughput.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

import numpy as np

from repro.core.disciplines import resolve_discipline
from repro.engine.executor import resolve_engine
from repro.engine.prefetch import prefetch_chunks, source_chunks
from repro.engine.shards import EpochShardPlan, SwitchingShardPlan, plan_shards
from repro.obs import NULL_TELEMETRY, PlannerFallbackEvent, resolve_telemetry
from repro.robust.bounded_deletion import RobustBoundedDeletionFp
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.dp import (
    RobustDPDEDistinctElements,
    RobustDPDEF2,
    RobustDPDistinctElements,
    RobustDPF2,
)
from repro.robust.distinct import (
    FastRobustDistinctElements,
    RobustDistinctElements,
)
from repro.robust.entropy import RobustEntropy
from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.robust.moments import (
    RobustFpHigh,
    RobustFpPaths,
    RobustFpSwitching,
)
from repro.sketches.base import Sketch
from repro.streams.model import StreamParameters, chunk_updates
from repro.streams.sources import ChunkSource, as_chunk_source
from repro.streams.store import StreamWriter

#: Reentrant no-op context for the untraced ingest path.
_NOOP_CTX = contextlib.nullcontext()

PROBLEMS = (
    "distinct",
    "distinct-fast",
    "distinct-crypto",
    "distinct-dp",
    "distinct-dpde",
    "fp",
    "fp-small-delta",
    "fp-high",
    "f2-dp",
    "f2-dpde",
    "heavy-hitters",
    "entropy",
    "bounded-deletion",
)


def robust_estimator(
    problem: str,
    n: int,
    m: int,
    eps: float,
    seed: int = 0,
    p: float = 2.0,
    alpha: float = 4.0,
    delta: float = 0.05,
    **kwargs,
) -> Sketch:
    """Build the adversarially robust estimator for ``problem``.

    Parameters
    ----------
    problem:
        One of :data:`PROBLEMS`.
    n, m:
        Universe size and stream-length bound (drive the flip budgets).
    eps:
        Approximation parameter ((1 ± eps) multiplicative, or additive
        eps bits for "entropy").
    seed:
        Seeds all internal randomness (reproducible).
    p:
        Moment order for the Fp problems.
    alpha:
        Deletion bound for "bounded-deletion".
    delta:
        Target failure probability.
    kwargs:
        Forwarded to the underlying constructor (expert knobs such as
        ``copies`` or ``stable_constant``).
    """
    rng = np.random.default_rng(seed)
    if problem == "distinct":
        return RobustDistinctElements(n=n, m=m, eps=eps, rng=rng,
                                      delta=delta, **kwargs)
    if problem == "distinct-fast":
        return FastRobustDistinctElements(n=n, m=m, eps=eps, rng=rng,
                                          delta=delta, **kwargs)
    if problem == "distinct-crypto":
        return CryptoRobustDistinctElements(n=n, eps=eps, rng=rng,
                                            delta=delta, **kwargs)
    if problem == "distinct-dp":
        return RobustDPDistinctElements(n=n, m=m, eps=eps, rng=rng,
                                        delta=delta, **kwargs)
    if problem == "distinct-dpde":
        return RobustDPDEDistinctElements(n=n, m=m, eps=eps, rng=rng,
                                          delta=delta, **kwargs)
    if problem == "f2-dp":
        return RobustDPF2(n=n, m=m, eps=eps, rng=rng, delta=delta, **kwargs)
    if problem == "f2-dpde":
        return RobustDPDEF2(n=n, m=m, eps=eps, rng=rng, delta=delta,
                            **kwargs)
    if problem == "fp":
        if p > 2:
            raise ValueError("use problem='fp-high' for p > 2")
        return RobustFpSwitching(p=p, n=n, m=m, eps=eps, rng=rng,
                                 delta=delta, **kwargs)
    if problem == "fp-small-delta":
        if p > 2:
            raise ValueError("use problem='fp-high' for p > 2")
        return RobustFpPaths(p=p, n=n, m=m, eps=eps, rng=rng,
                             delta=delta, **kwargs)
    if problem == "fp-high":
        if p <= 2:
            raise ValueError("fp-high requires p > 2")
        return RobustFpHigh(p=p, n=n, m=m, eps=eps, rng=rng,
                            delta=delta, **kwargs)
    if problem == "heavy-hitters":
        return RobustHeavyHitters(n=n, m=m, eps=eps, rng=rng,
                                  delta=delta, **kwargs)
    if problem == "entropy":
        return RobustEntropy(n=n, m=m, eps=eps, rng=rng,
                             delta=delta, **kwargs)
    if problem == "bounded-deletion":
        return RobustBoundedDeletionFp(p=min(p, 2.0), n=n, m=m, eps=eps,
                                       alpha=alpha, rng=rng, delta=delta,
                                       **kwargs)
    raise ValueError(
        f"unknown problem {problem!r}; choose from {PROBLEMS}"
    )


@dataclass(frozen=True)
class IngestReport:
    """What :func:`ingest` observed while replaying a stream."""

    updates: int
    chunks: int
    seconds: float
    items_per_sec: float
    final_estimate: float
    #: Execution mode: "direct" (plain update_batch), "serial" (engine
    #: shared-work path), or "process[N]" (N forked workers).
    mode: str = "direct"
    #: Band-policy name driving the estimator's switching protocol
    #: ("multiplicative", "additive", "epoch"), or None when the
    #: estimator has no switching core.
    policy: str | None = None
    #: Probe-discipline name driving the switching protocol
    #: ("active-copy", "private-aggregate"), or None without one.
    discipline: str | None = None
    #: Sparse-vector budget state after the replay (publications, spent,
    #: remaining, generations) — only for budgeted disciplines (DP).
    dp_budget: dict | None = None
    #: Why the planner fell back to plain serial feeding, if it did
    #: (engine paths only; the direct path never plans).
    fallback_reason: str | None = None
    #: Cumulative per-phase wall-clock seconds of the switching protocol
    #: — engine sessions with a switching core only; None on the direct
    #: path and for sessions without a protocol.  Coordinator-side keys:
    #: "probe" (probing the discipline's read set, including wall time
    #: blocked on worker replies), "band_test" (boundary band decisions),
    #: "feed" (non-probed fan-out feeds as seen by the coordinator —
    #: fire-and-forget under ProcessEngine, so coordinator feed seconds
    #: understate worker work), "replace" (publication bookkeeping and
    #: copy replacement).  ProcessEngine sessions add worker-side totals
    #: summed across workers under separate keys — "worker_probe",
    #: "worker_feed", "worker_replace" — rather than folding them into
    #: the coordinator phases, which would double-count the blocking
    #: probe time; the worker keys are where fire-and-forget feed work
    #: actually shows up.  Spec-shipped sessions add "worker_generate"
    #: (chunk materialization inside the workers) under the same
    #: rule — never summed into a coordinator key, because worker
    #: generation overlaps coordinator wall time entirely.
    phase_seconds: dict | None = None
    #: How a ``source=`` chunk source was executed — "spec" (spec
    #: broadcast; workers materialized locally), "universe" (serial
    #: counts-based fast path), or "bytes: <reason>" (coordinator-side
    #: materialization, with the planner's reason) — or None when no
    #: chunk source drove the replay.
    source_mode: str | None = None
    #: Merged telemetry snapshot (metric values, event counts by kind,
    #: span count) when :func:`ingest` ran with ``telemetry=`` enabled;
    #: None otherwise.  See :mod:`repro.obs`.
    telemetry: dict | None = None
    #: Directory the replay was teed into (``spill_store=``), if any.
    spill_path: str | None = None


def band_policy_name(estimator: Sketch) -> str | None:
    """The band-policy name an estimator's switching core runs under.

    Derived from the engine's shard planner — the one place that knows
    how to unwrap robust wrappers — so the reported policy can never
    disagree with how the engines would actually drive the estimator;
    estimators the planner runs serially (no switching core) return
    None.
    """
    plan = plan_shards(estimator)
    if isinstance(plan, SwitchingShardPlan):
        return plan.band.name
    if isinstance(plan, EpochShardPlan):
        return "epoch"
    return None


def _unwrap_switcher(estimator: Sketch):
    """The switching core the planner would drive, or None."""
    plan = plan_shards(estimator)
    if isinstance(plan, SwitchingShardPlan):
        return plan.switcher
    return None


def install_telemetry(estimator: Sketch, telemetry) -> bool:
    """Bind a :class:`repro.obs.Telemetry` hub to an estimator's copies.

    The :class:`~repro.core.copies.CopyManager` is the telemetry hub the
    switching core, the probe disciplines, and the difference ladder all
    read through, so binding there lights up every instrumented site at
    once.  Unwraps through the shard planner exactly like
    :func:`band_policy_name`; for the heavy-hitters epoch plan both the
    inner L2 copies and the point-query ring are bound.  Returns True if
    anything was bound — estimators the planner runs serially have no
    switching core and report False (metrics/spans from :func:`ingest`
    itself still work; there are just no protocol events to emit).
    """
    plan = plan_shards(estimator)
    if isinstance(plan, SwitchingShardPlan):
        plan.switcher._copies.telemetry = telemetry
        return True
    if isinstance(plan, EpochShardPlan):
        plan.l2_plan.switcher._copies.telemetry = telemetry
        plan.ring.telemetry = telemetry
        return True
    return False


def discipline_state(estimator: Sketch) -> tuple[str | None, dict | None]:
    """(discipline name, budget state) of an estimator's switching core.

    Unwraps through the shard planner like :func:`band_policy_name`;
    estimators without a switching core — including the heavy-hitters
    epoch wrapper, whose inner L2 tracker always runs active-copy —
    report ``(None, None)``.
    """
    switcher = _unwrap_switcher(estimator)
    if switcher is None:
        return None, None
    return switcher.discipline.name, switcher.discipline.budget_state()


def ingest(
    estimator: Sketch,
    stream=None,
    chunk_size: int = 65536,
    engine=None,
    prefetch: int = 0,
    discipline=None,
    telemetry=None,
    spill_store=None,
    spill_params: StreamParameters | None = None,
    source=None,
) -> IngestReport:
    """Replay an **oblivious** stream through the batched pipeline.

    ``stream`` may be a plain item sequence, ``(item, delta)`` pairs,
    ``Update`` tuples, a ``StreamChunk``, an iterable of chunks (the
    array-native generators in :mod:`repro.streams.generators`), or a
    :class:`repro.streams.store.ColumnarStreamStore` replayed zero-copy.
    Updates are sliced into ``chunk_size``-sized chunks and fed through
    ``update_batch``, which every estimator supports (vectorized for the
    hot sketches, loop fallback otherwise).

    ``engine`` selects the execution engine (``None`` for the direct
    path, ``"serial"``, ``"process"``, ``"process:N"``, a worker count,
    or an :class:`repro.engine.ExecutionEngine`): switching estimators —
    multiplicative, additive (entropy), or the heavy-hitters epoch
    wrapper — fan their copies out across workers, mergeable sketches
    shard per partial, everything else falls back to the deterministic
    serial path with identical outputs.  ``prefetch`` (a queue depth;
    ``2`` = double buffering) overlaps chunk generation or disk reads
    with ingestion.

    ``discipline`` installs a probe discipline on the estimator's
    switching core before the replay (``"active"``, ``"private"``/
    ``"dp"``, ``"dp-diff"``/``"difference"``, or a
    :class:`repro.core.disciplines.ProbeDiscipline` instance): the DP
    private-aggregate discipline publishes a noisy median over all
    copies under a sparse-vector budget instead of burning the active
    copy, and the difference-ladder discipline answers most
    publications from cheap difference-estimator tiers (partitioned off
    the front of the copy set) so the strong sparse-vector budget is
    charged only at checkpoints.  Requires a fresh estimator whose
    planner resolves to a switching core; the report's ``discipline``
    and ``dp_budget`` fields record what ran and what the budget looked
    like afterwards.

    ``telemetry`` turns on the observability subsystem for this replay
    (see :mod:`repro.obs`): pass ``True``/``"ring"`` for an in-memory
    ring of trace events, ``"jsonl:PATH"`` (or any ``*.jsonl`` path) to
    stream events to a JSONL trace file readable by ``repro trace``,
    ``"metrics"`` for counters/histograms only, a callable to receive
    each event, or a pre-built :class:`repro.obs.Telemetry`.  The hub is
    bound to the estimator's switching core via
    :func:`install_telemetry`, threaded through the prefetcher and the
    execution engine (ProcessEngine workers buffer events and span
    timings locally and ship them back at collection), and the merged
    snapshot lands in ``IngestReport.telemetry``.  Telemetry observes —
    it never draws randomness or touches protocol state — so outputs
    are bit-for-bit identical with it on or off.

    ``spill_store`` tees the replay into a columnar on-disk store at the
    given directory while feeding the estimator: every chunk drawn from
    the source is appended through a
    :class:`repro.streams.store.StreamWriter` before it is ingested, and
    the header is sealed even if ingestion fails mid-stream — so a
    generated (or otherwise ephemeral) stream becomes replayable as a
    side effect.  ``spill_params`` embeds the ``(n, m, M)`` regime in
    the header; when the source itself is a store, its params carry over
    by default.

    ``source`` (mutually exclusive with ``stream``) replays a
    :class:`repro.streams.sources.ChunkSource` — a *description* of the
    stream (generator spec, or a store path plus row range) rather than
    its bytes.  A parallel ProcessEngine switching session then ships
    the picklable spec to the workers once and each worker materializes
    its own chunks (regenerating via the seeded RNG tree, or memmapping
    its own read-only store view): the per-chunk shared-memory copy and
    wakeup disappear and generation overlaps compute inside the
    workers.  Serial switching sessions use the source's declared item
    universe for the counts-based fast path when the copy set licenses
    it.  Everything else — plus ad-hoc iterables passed as ``source``,
    and any replay teeing through ``spill_store`` — falls back to
    coordinator-side materialization through the ordinary bytes path;
    ``IngestReport.source_mode`` records which path ran and why.
    Applies to oblivious replay only, like the rest of this surface.

    This is the high-throughput replay surface only: adaptive adversaries
    must go through :class:`repro.adversary.game.AdversarialGame`, which
    keeps per-update round granularity by design.
    """
    if stream is not None and source is not None:
        raise ValueError("pass either stream= or source=, not both")
    if stream is None and source is None:
        raise ValueError("ingest needs a stream= or a source=")
    if isinstance(stream, ChunkSource):
        # A ChunkSource in stream position is a source; redirect it.
        source, stream = stream, None
    src = None
    src_reason = None
    if source is not None:
        src = as_chunk_source(source, chunk_size)
        if src is None:
            # Ad-hoc iterable with no picklable description: replay it
            # as a plain stream through the bytes path.
            stream = source
            src_reason = (
                f"{type(source).__name__} has no picklable chunk-source "
                "spec; shipping bytes"
            )
        elif spill_store is not None:
            # Teeing into a store needs every chunk coordinator-side
            # anyway, which is exactly what spec-shipping removes.
            src_reason = (
                "spill_store tees chunks through the coordinator; "
                "shipping bytes"
            )
    resolved = resolve_engine(engine)
    wanted = resolve_discipline(discipline)
    if wanted is not None:
        switcher = _unwrap_switcher(estimator)
        if switcher is None:
            raise ValueError(
                f"{type(estimator).__name__} has no switching core to "
                f"apply a probe discipline to"
            )
        switcher.set_discipline(wanted)
    tele = resolve_telemetry(telemetry)
    if tele is None:
        tele = NULL_TELEMETRY
    else:
        # Bind the hub *after* any discipline swap so the installed
        # discipline is the one that gets observed.
        install_telemetry(estimator, tele)
    if spill_params is None and stream is not None:
        spill_params = getattr(stream, "params", None)

    def make_chunk_iter():
        # Built lazily so a spec-shipped session (which never
        # materializes coordinator-side) doesn't spin up a prefetch
        # producer for chunks nobody will read.
        if src is not None:
            return source_chunks(src, depth=prefetch, telemetry=tele)
        if hasattr(stream, "chunks") and not isinstance(stream, Sketch):
            # Chunked sources (ColumnarStreamStore) slice themselves.
            chunk_iter = stream.chunks(chunk_size)
        else:
            chunk_iter = chunk_updates(stream, chunk_size)
        if prefetch:
            chunk_iter = prefetch_chunks(chunk_iter, depth=prefetch,
                                         telemetry=tele)
        return chunk_iter

    writer = None
    if spill_store is not None:
        writer = StreamWriter(
            spill_store, params=spill_params,
            metadata={"source": "api.ingest", "chunk_size": chunk_size},
        )
    count = 0
    chunks = 0
    mode = "direct"
    policy = None
    fallback = None
    phases = None
    traced = tele.enabled
    chunk_sizes = (
        tele.metrics.histogram(
            "ingest_chunk_updates", "updates per ingested chunk"
        ) if traced else None
    )
    source_mode = None
    start = time.perf_counter()
    try:
        with tele.span("ingest") if traced else _NOOP_CTX:
            if resolved is None:
                # Direct path: no session planned the estimator, so
                # resolve the policy name from the planner ourselves.
                policy = band_policy_name(estimator)
                if src is not None or src_reason is not None:
                    source_mode = "bytes: " + (
                        src_reason
                        or "direct path has no engine session; shipping bytes"
                    )
                for chunk in make_chunk_iter():
                    if writer is not None:
                        writer.append(chunk.items, chunk.deltas)
                    if traced:
                        with tele.span("chunk"):
                            estimator.update_batch(chunk.items, chunk.deltas)
                        chunk_sizes.observe(len(chunk))
                    else:
                        estimator.update_batch(chunk.items, chunk.deltas)
                    count += len(chunk)
                    chunks += 1
            else:
                session_src = src if src_reason is None else None
                with resolved.session(estimator, source=session_src) as session:
                    mode = session.mode
                    policy = session.policy
                    fallback = session.fallback_reason
                    source_mode = session.source_mode
                    if src_reason is not None:
                        source_mode = f"bytes: {src_reason}"
                    if session.spec_shipped:
                        # Workers materialize; the coordinator only
                        # drives per-chunk advance commands.
                        lengths = src.chunk_lengths()
                        session.feed_source(src)
                        for length in lengths:
                            if traced:
                                chunk_sizes.observe(length)
                            count += length
                            chunks += 1
                    else:
                        for chunk in make_chunk_iter():
                            if writer is not None:
                                writer.append(chunk.items, chunk.deltas)
                            session.feed(chunk.items, chunk.deltas)
                            if traced:
                                chunk_sizes.observe(len(chunk))
                            count += len(chunk)
                            chunks += 1
                # Read after the session has finalized: ProcessEngine
                # worker phase timings only exist once collect() merged
                # them on session exit.
                phases = session.phase_seconds
                if traced and fallback is not None:
                    tele.emit(PlannerFallbackEvent(reason=fallback))
                    tele.metrics.counter(
                        "planner_fallbacks_total",
                        "engine sessions that fell back to serial feeding",
                    ).inc()
    finally:
        if writer is not None:
            writer.close()
    secs = time.perf_counter() - start
    if traced:
        tele.metrics.counter(
            "ingest_updates_total", "stream updates replayed"
        ).inc(count)
        tele.metrics.counter(
            "ingest_chunks_total", "stream chunks replayed"
        ).inc(chunks)
    disc_name, budget = discipline_state(estimator)
    return IngestReport(
        updates=count,
        chunks=chunks,
        seconds=secs,
        items_per_sec=count / secs if secs > 0 else 0.0,
        final_estimate=estimator.query(),
        mode=mode,
        policy=policy,
        discipline=disc_name,
        dp_budget=budget,
        fallback_reason=fallback,
        phase_seconds=phases,
        source_mode=source_mode,
        telemetry=tele.snapshot() if traced else None,
        spill_path=None if spill_store is None else str(writer.path),
    )
