"""Cascaded norms on matrix streams (the Section 3 remark).

The paper notes after Corollary 3.5 that its robustification machinery
extends beyond frequency-vector functions: cascaded norms ``|A|_(p,k)``
of insertion-only matrix streams are monotone with polynomial range, so
Proposition 3.4 bounds their flip number and sketch switching applies.

Scenario: a metrics pipeline ingests (host, counter, increment) updates;
``|A|_(1,2)`` — the sum over hosts of the L2 norm of each host's counter
vector — is a standard "aggregate load dispersion" statistic.  We track
it robustly while an adaptive load generator steers traffic toward
whichever host the published statistic suggests is lightest.

Run:  python examples/cascaded_norms.py
"""

import numpy as np

from repro.sketches import ExactCascadedNorm, RobustCascadedNorm, flatten_index

HOSTS = 16       # matrix rows
COUNTERS = 16    # matrix columns
M = 2000
EPS = 0.35


def main() -> None:
    rng = np.random.default_rng(0)
    robust = RobustCascadedNorm(
        p=1.0, k=2.0, num_rows=HOSTS, num_cols=COUNTERS, m=M, eps=EPS,
        rng=np.random.default_rng(1), copies=12, rows_per_sketch=200,
    )
    exact = ExactCascadedNorm(p=1.0, k=2.0, num_cols=COUNTERS)

    published = 0.0
    last_reported_light = 0
    worst = 0.0
    for t in range(M):
        # Adaptive steering: send load to the host the previous published
        # value was attributed to (a crude feedback heuristic).
        host = (last_reported_light + int(rng.integers(0, 4))) % HOSTS
        counter = int(rng.integers(0, COUNTERS))
        robust.update_entry(host, counter, 1)
        exact.update(flatten_index(host, counter, COUNTERS), 1)
        new = robust.query()
        if new != published:
            published = new
            last_reported_light = host
        if t >= 200:
            truth = exact.query()
            worst = max(worst, abs(published - truth) / truth)

    print(f"== robust cascaded norm |A|_(1,2), {M} matrix updates ==")
    print(f"final estimate: {robust.query():.1f}  (truth {exact.query():.1f})")
    print(f"worst relative error after warm-up: {worst:.3f} (band {EPS})")
    print(f"switches used: {robust.switches}")
    print(f"space: {robust.space_bits() / 8 / 1024:.0f} KiB "
          f"(exact baseline: {exact.space_bits() / 8 / 1024:.1f} KiB)")


if __name__ == "__main__":
    main()
