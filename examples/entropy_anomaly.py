"""Entropy-based anomaly detection with the robust tracker (Theorem 7.3).

Traffic entropy is a standard DDoS / scan detector: the empirical entropy
of destination addresses collapses during a concentration attack and
spikes during address-scanning.  A detector that publishes its entropy
estimate is exactly the adaptive setting — attackers shape traffic based
on what the detector reports.

This example streams three phases (benign mixed traffic, a concentration
attack on one address, recovery) through the Theorem 7.3 robust entropy
tracker and a naive exact reference, and checks the tracker (a) follows
the entropy collapse within its additive band and (b) crosses the alarm
threshold during the attack phase.

Run:  python examples/entropy_anomaly.py
"""

import numpy as np

from repro.robust import RobustEntropy
from repro.streams import FrequencyVector

N = 1024
PHASE = 900
EPS = 0.4
#: Alarm when the entropy estimate drops this far below its running peak.
#: (The tracked quantity is the entropy of the *cumulative* distribution,
#: which declines gradually once an attack starts — a relative-drop alarm
#: is the standard detector shape for it.)
ALARM_DROP = 1.2  # bits


def phase_item(phase: int, rng: np.random.Generator) -> int:
    if phase == 1:  # concentration attack: 85% of traffic to one target
        return 7 if rng.random() < 0.85 else int(rng.integers(0, N))
    return int(rng.integers(0, 256))  # benign: uniform over 256 endpoints


def main() -> None:
    rng = np.random.default_rng(0)
    tracker = RobustEntropy(n=N, m=3 * PHASE, eps=EPS,
                            rng=np.random.default_rng(1), copies=32)
    truth = FrequencyVector()
    alarms = []
    worst = 0.0
    peak = 0.0
    for t in range(3 * PHASE):
        item = phase_item(t // PHASE, rng)
        truth.update(item, 1)
        est = tracker.process_update(item, 1)
        peak = max(peak, est)
        if t > 150:
            worst = max(worst, abs(est - truth.shannon_entropy()))
        if t % 50 == 49:
            alarms.append((t, est, est <= peak - ALARM_DROP))

    print(f"== entropy anomaly detection, 3 phases x {PHASE} records ==")
    print("phase boundaries at t=900 (attack start) and t=1800 (recovery)")
    print(f"worst additive error vs exact entropy: {worst:.3f} "
          f"(band eps={EPS})")
    print("\n    t   estimate  alarm")
    for t, est, alarm in alarms[::3]:
        marker = " <-- ATTACK" if alarm else ""
        print(f"  {t:5d}  {est:7.2f}  {marker}")
    attack_alarms = [a for t, _, a in alarms if PHASE + 100 <= t < 2 * PHASE]
    benign_alarms = [a for t, _, a in alarms if t < PHASE - 50]
    print(f"\nalarm rate during attack phase: "
          f"{sum(attack_alarms)}/{len(attack_alarms)}")
    print(f"false alarms during benign phase: "
          f"{sum(benign_alarms)}/{len(benign_alarms)}")


if __name__ == "__main__":
    main()
