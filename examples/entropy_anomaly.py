"""Entropy-based anomaly detection on the engine path (Theorem 7.3).

Traffic entropy is a standard DDoS / scan detector: the empirical entropy
of destination addresses collapses during a concentration attack and
spikes during address-scanning.  A detector that publishes its entropy
estimate is exactly the adaptive setting — attackers shape traffic based
on what the detector reports.

Since the band-policy refactor the additive (entropy) band runs through
the same switching protocol as every other robustness scheme, so this
example drives the Theorem 7.3 tracker through an **engine session**
(``api.ingest(engine="serial")`` under the hood): each traffic window
arrives as a chunk, the engine aggregates it once for all copies, and
the alarm logic reads the published estimate at window boundaries.  This
is the oblivious-replay deployment shape — telemetry windows streaming
off a collector; an *adaptive* attacker probing the detector per packet
must be modelled with :class:`repro.adversary.game.AdversarialGame`,
which stays per item by design.

The three phases (benign mixed traffic, a concentration attack on one
address, recovery) check that the tracker (a) follows the entropy
collapse within its additive band and (b) crosses the alarm threshold
during the attack phase.

Run:  python examples/entropy_anomaly.py
"""

import numpy as np

from repro.engine import SerialEngine
from repro.robust import RobustEntropy
from repro.streams import FrequencyVector

N = 1024
PHASE = 900
WINDOW = 150          # one telemetry chunk = 150 records
EPS = 0.4
#: Alarm when the entropy estimate drops this far below its running peak.
#: (The tracked quantity is the entropy of the *cumulative* distribution,
#: which declines gradually once an attack starts — a relative-drop alarm
#: is the standard detector shape for it.)
ALARM_DROP = 1.2  # bits


def phase_traffic(phase: int, rng: np.random.Generator) -> np.ndarray:
    """One phase of destination addresses, as a chunk-ready array."""
    if phase == 1:  # concentration attack: 85% of traffic to one target
        attack = rng.random(PHASE) < 0.85
        background = rng.integers(0, N, size=PHASE)
        return np.where(attack, 7, background)
    return rng.integers(0, 256, size=PHASE)  # benign: 256 endpoints


def main() -> None:
    rng = np.random.default_rng(0)
    tracker = RobustEntropy(n=N, m=3 * PHASE, eps=EPS,
                            rng=np.random.default_rng(1), copies=32)
    truth = FrequencyVector()
    stream = np.concatenate([phase_traffic(p, rng) for p in range(3)])

    alarms = []
    worst = 0.0
    peak = 0.0
    engine = SerialEngine()
    with engine.session(tracker) as session:
        for lo in range(0, len(stream), WINDOW):
            window = stream[lo:lo + WINDOW]
            session.feed(window)
            truth.update_batch(window)
            t = lo + len(window)
            est = session.query()
            peak = max(peak, est)
            if t > 150:
                worst = max(worst, abs(est - truth.shannon_entropy()))
            alarms.append((t, est, est <= peak - ALARM_DROP))

    print(f"== entropy anomaly detection, 3 phases x {PHASE} records ==")
    print(f"engine path: {WINDOW}-record windows through SerialEngine "
          f"(additive band, {tracker.copies} CC copies, "
          f"{tracker.switches} switches)")
    print("phase boundaries at t=900 (attack start) and t=1800 (recovery)")
    print(f"worst additive error vs exact entropy at window boundaries: "
          f"{worst:.3f} (band eps={EPS})")
    print("\n    t   estimate  alarm")
    for t, est, alarm in alarms[::2]:
        marker = " <-- ATTACK" if alarm else ""
        print(f"  {t:5d}  {est:7.2f}  {marker}")
    attack_alarms = [a for t, _, a in alarms if PHASE + 100 <= t < 2 * PHASE]
    benign_alarms = [a for t, _, a in alarms if t < PHASE - 50]
    print(f"\nalarm rate during attack phase: "
          f"{sum(attack_alarms)}/{len(attack_alarms)}")
    print(f"false alarms during benign phase: "
          f"{sum(benign_alarms)}/{len(benign_alarms)}")


if __name__ == "__main__":
    main()
