"""Network traffic monitoring: robust L2 heavy hitters (Theorem 6.5).

Scenario from the paper's introduction: internet routers and traffic
logs.  A monitor publishes the current heavy flows; upstream traffic
engineering *reacts* to those reports (rate-limiting reported flows,
shifting load), so the stream the monitor sees is adaptive.

This example streams flow records with six persistent elephant flows and
a reactive background: whenever a flow is reported heavy, the background
shifts mice traffic away from the reported set (a feedback loop).  The
Theorem 6.5 robust heavy-hitters algorithm must keep reporting exactly
the elephants.

Run:  python examples/network_heavy_hitters.py
"""

import numpy as np

from repro.robust import RobustHeavyHitters
from repro.streams import FrequencyVector

N = 4096          # flow id space
M = 4000          # records
EPS = 0.25
ELEPHANTS = list(range(6))


def main() -> None:
    rng = np.random.default_rng(0)
    monitor = RobustHeavyHitters(n=N, m=M, eps=EPS,
                                 rng=np.random.default_rng(1), copies=10)
    truth = FrequencyVector()
    reported: set[int] = set()
    avoided: set[int] = set()

    for t in range(M):
        # Reactive background: mice avoid flows currently reported heavy.
        if rng.random() < 0.5:
            flow = int(rng.choice(ELEPHANTS))
        else:
            while True:
                flow = int(rng.integers(len(ELEPHANTS), N))
                if flow not in avoided:
                    break
        truth.update(flow, 1)
        monitor.update(flow, 1)
        if t % 100 == 99:  # periodic report, consumed by traffic engineering
            reported = monitor.heavy_hitters()
            avoided = set(reported) - set(ELEPHANTS)

    true_heavy = truth.l2_heavy_hitters(EPS)
    final = monitor.heavy_hitters()
    print(f"== adaptive traffic monitor, {M} records ==")
    print(f"true eps-heavy flows: {sorted(true_heavy)}")
    print(f"reported flows:       {sorted(final)}")
    missed = true_heavy - final
    spurious = {f for f in final if truth[f] < (EPS / 2) * truth.lp(2)}
    print(f"missed: {sorted(missed) or 'none'}   "
          f"spurious (below eps/2): {sorted(spurious) or 'none'}")
    print(f"robust L2 estimate: {monitor.l2_estimate():.0f} "
          f"(true {truth.lp(2):.0f})")
    print(f"epochs used: {monitor.epochs}; "
          f"space {monitor.space_bits() / 8 / 1024:.0f} KiB")
    for flow in ELEPHANTS:
        print(f"  flow {flow}: true {truth[flow]}, "
              f"published estimate {monitor.point_query(flow):.0f}")


if __name__ == "__main__":
    main()
