"""Quickstart: adversarially robust distinct-elements tracking.

Builds the Theorem 5.1 robust F0 estimator, streams 5000 fresh items at
it (the worst case for its internal switching budget), and verifies the
tracking guarantee at every step.  Then plays the same algorithm against
an *adaptive* adversary that chooses each update after seeing the
previous estimate — the setting the paper is about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.adversary import (
    AdversarialGame,
    EstimateProbingAdversary,
    relative_error_judge,
)
from repro.robust import RobustDistinctElements
from repro.streams import FrequencyVector

N = 1 << 14       # universe size
M = 5000          # stream length
EPS = 0.25        # (1 +- eps) tracking accuracy


def static_stream_demo() -> None:
    print(f"== static stream: {M} fresh items, eps={EPS} ==")
    algo = RobustDistinctElements(n=N, m=M, eps=EPS,
                                  rng=np.random.default_rng(0))
    truth = FrequencyVector()
    worst = 0.0
    for i in range(M):
        truth.update(i, 1)
        estimate = algo.process_update(i, 1)
        if i >= 100:
            worst = max(worst, abs(estimate - truth.f0()) / truth.f0())
    print(f"final estimate: {algo.query():.0f}  (truth {truth.f0()})")
    print(f"worst relative error after warm-up: {worst:.3f}")
    print(f"sketch switches used: {algo.switches} (ring of {algo.copies})")
    print(f"space: {algo.space_bits() / 8 / 1024:.1f} KiB\n")


def adaptive_stream_demo() -> None:
    print("== adaptive stream: estimate-probing adversary ==")
    algo = RobustDistinctElements(n=N, m=M, eps=EPS,
                                  rng=np.random.default_rng(1))
    game = AdversarialGame(
        truth_fn=lambda f: f.f0(),
        judge=relative_error_judge(EPS),
        grace_steps=100,
    )
    adversary = EstimateProbingAdversary(N, np.random.default_rng(2))
    result = game.run(algo, adversary, max_rounds=M)
    print(f"rounds played: {result.steps}")
    print(f"adversary ever forced an error beyond eps: {result.failed}")
    print(f"worst relative error: {result.max_relative_error:.3f}")


if __name__ == "__main__":
    static_stream_demo()
    adaptive_stream_demo()
