"""Database cardinality estimation with a feedback loop.

The paper's introduction motivates adversarial robustness with exactly
this scenario: "a user sequentially makes queries to a database, and
receives an immediate response after each query.  Naturally, future
queries ... may heavily depend on the responses given by the database to
previous queries."

We model a query optimizer that keeps a distinct-values estimate for a
column (to cost joins) and a workload generator whose next inserts depend
on the optimizer's published estimates (e.g. a load balancer that routes
new records toward partitions reported as small).  The feedback loop is
adversarial *by accident*, not malice — the common production failure
mode.

Compared head-to-head:

* a plain KMV estimator (the datasketches-style default), and
* the Theorem 10.1 crypto-robust estimator (PRP preprocessing + KMV),
  whose space cost over plain KMV is a single 128-bit key.

Run:  python examples/db_cardinality.py
"""

import numpy as np

from repro.robust import CryptoRobustDistinctElements
from repro.sketches import KMVSketch
from repro.streams import FrequencyVector

N = 1 << 16
ROUNDS = 4000


class FeedbackWorkload:
    """Routes new records based on the published cardinality estimate.

    Keeps two "partitions" (disjoint key ranges).  Each round it inserts a
    fresh key into the partition whose *reported* cardinality is smaller —
    the classic estimate-driven feedback loop.  The workload itself is
    honest; only its coupling to the estimate makes it adaptive.
    """

    def __init__(self):
        self.next_key = [0, N // 2]  # fresh-key cursors per partition
        self.reported = [0.0, 0.0]

    def next_insert(self) -> int:
        part = 0 if self.reported[0] <= self.reported[1] else 1
        key = self.next_key[part]
        self.next_key[part] += 1
        return key

    def observe(self, part: int, estimate: float) -> None:
        self.reported[part] = estimate


def run(estimator_factory, label: str) -> None:
    estimators = [estimator_factory(seed) for seed in (10, 11)]
    truths = [FrequencyVector(), FrequencyVector()]
    workload = FeedbackWorkload()
    worst = 0.0
    for _ in range(ROUNDS):
        key = workload.next_insert()
        part = 0 if key < N // 2 else 1
        truths[part].update(key, 1)
        est = estimators[part].process_update(key, 1)
        workload.observe(part, est)
        true_f0 = truths[part].f0()
        if true_f0 > 100:
            worst = max(worst, abs(est - true_f0) / true_f0)
    total_space = sum(e.space_bits() for e in estimators)
    print(f"  {label}:")
    for part in (0, 1):
        print(f"    partition {part}: reported {estimators[part].query():.0f}"
              f" vs true {truths[part].f0()}")
    print(f"    worst relative error: {worst:.3f}")
    print(f"    space: {total_space / 8 / 1024:.1f} KiB\n")


if __name__ == "__main__":
    print(f"== optimizer feedback loop, {ROUNDS} inserts ==\n")
    run(lambda seed: KMVSketch.for_accuracy(
        0.1, 0.05, np.random.default_rng(seed)), "plain KMV")
    run(lambda seed: CryptoRobustDistinctElements(
        n=N, eps=0.1, rng=np.random.default_rng(seed)),
        "crypto-robust KMV (Thm 10.1)")
    print("Both stay accurate on this benign-but-adaptive loop; the robust "
          "one carries a *guarantee* for any adaptive workload, at the cost "
          "of one PRP key.")
