"""Theorem 9.1 demo: breaking AMS adaptively — and surviving with the
robust tracker.

Part 1 runs Algorithm 3 against the classic AMS F2 sketch and prints an
ASCII trace of the estimate collapsing below half the true second moment
within O(t) updates.

Part 2 runs the *identical adversary* against the Theorem 4.1
sketch-switching F2 tracker: the estimate stays inside its (1 ± eps)
band, because the rounded, rarely-changing outputs leak nothing the
adversary can exploit.

Run:  python examples/ams_attack_demo.py
"""

import numpy as np

from repro.adversary import run_ams_attack
from repro.robust import RobustFpSwitching
from repro.sketches import AMSFullSketch

T_ROWS = 64
PLOT_WIDTH = 60


def ascii_trace(transcript, label: str) -> None:
    """Plot estimate/truth ratio over time as an ASCII strip."""
    print(f"  {label}: estimate / truth over the attack "
          "(each char ~ bucket of steps; '#'>=0.9, '+'>=0.5, '.'<0.5)")
    ratios = [est / truth for est, truth in transcript if truth > 0]
    bucket = max(1, len(ratios) // PLOT_WIDTH)
    strip = ""
    for i in range(0, len(ratios), bucket):
        r = ratios[i]
        strip += "#" if r >= 0.9 else ("+" if r >= 0.5 else ".")
    print(f"  [{strip}]")
    print(f"  final ratio: {ratios[-1]:.3f}\n")


def attack_plain_ams() -> None:
    print(f"== Algorithm 3 vs plain AMS (t={T_ROWS} rows) ==")
    sketch = AMSFullSketch(t=T_ROWS, n=8192, rng=np.random.default_rng(0))
    fooled, steps, transcript = run_ams_attack(
        sketch, np.random.default_rng(1), max_updates=40 * T_ROWS
    )
    print(f"  fooled (estimate < F2/2): {fooled} after {steps} updates "
          f"({steps / T_ROWS:.1f} x t)")
    ascii_trace(transcript, "plain AMS")


def attack_robust_tracker() -> None:
    print("== the same adversary vs the robust F2 tracker (Thm 4.1) ==")
    algo = RobustFpSwitching(
        p=2.0, n=8192, m=3000, eps=0.4, rng=np.random.default_rng(2),
        track="moment", copies=16, stable_constant=3.0,
    )
    fooled, steps, transcript = run_ams_attack(
        algo, np.random.default_rng(3), max_updates=1000, t=T_ROWS
    )
    print(f"  fooled: {fooled} (ran {steps} adversarial updates)")
    ascii_trace(transcript, "robust tracker")
    worst = max(abs(e - g) / g for e, g in transcript if g > 0)
    print(f"  worst relative error under attack: {worst:.3f} "
          "(within the eps=0.4 band)")


if __name__ == "__main__":
    attack_plain_ams()
    attack_robust_tracker()
